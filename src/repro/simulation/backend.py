"""Array-API backend registry for the batched lockstep engine.

The vectorized kernel (:func:`repro.simulation.batch.run_compiled`) is
written against the `Python array API standard
<https://data-apis.org/array-api/>`_ rather than against NumPy: every
array operation it performs is namespace-resolved (``xp.take``,
``xp.where``, boolean-mask indexing, ...), so the same code drives NumPy,
``array-api-strict`` (the conformance namespace used in CI to prove
backend-agnosticism) and — opportunistically, via ``array-api-compat`` —
CuPy or PyTorch arrays on GPU devices.

A :class:`Backend` is a small handle bundling the array namespace, an
optional device, and the two host-boundary conversions the engine needs:

* :meth:`Backend.asarray` / :meth:`Backend.zeros` — move host (NumPy)
  data onto the backend with an explicit dtype and device;
* :meth:`Backend.to_numpy` — bring small result blocks back to host
  NumPy (DLPack first, buffer protocol as fallback).

Random numbers are *not* part of the array API standard, and the engine
deliberately keeps its uniform streams on the host: every backend
consumes the **same** NumPy ``Generator`` draws, so campaigns with the
same seed agree across backends to floating-point accumulation order
(bitwise for NumPy-backed namespaces, ±1e-9 relative for GPU math
libraries) and the scalar-oracle bitwise cross-validation is preserved.

Selection
---------
``get_backend(None)`` resolves the default: the ``REPRO_BACKEND``
environment variable if set, else NumPy.  Names are canonicalized
(case-insensitive, ``_`` == ``-``), unknown names raise
:class:`~repro.exceptions.InvalidParameterError`, and registered names
whose namespace is not importable in this environment raise
:class:`~repro.exceptions.BackendUnavailableError`.  Additional
namespaces can be plugged in at runtime with :func:`register_backend`.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..exceptions import BackendUnavailableError, InvalidParameterError

__all__ = [
    "Backend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "array_namespace",
    "available_backends",
    "canonical_name",
    "get_backend",
    "installed_backends",
    "register_backend",
]

#: Environment variable consulted by ``get_backend(None)``.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Backend used when neither an argument nor the environment selects one.
DEFAULT_BACKEND = "numpy"


@dataclass(frozen=True)
class Backend:
    """An array-API namespace plus the device/dtype threading around it."""

    name: str
    xp: Any
    device: Any = None

    def _creation_kwargs(self, dtype: Any) -> dict[str, Any]:
        kwargs: dict[str, Any] = {}
        if dtype is not None:
            kwargs["dtype"] = dtype
        if self.device is not None:
            kwargs["device"] = self.device
        return kwargs

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        """Host data -> backend array (no copy when already there)."""
        return self.xp.asarray(values, **self._creation_kwargs(dtype))

    def zeros(self, n: int, dtype: Any = None) -> Any:
        return self.xp.zeros(n, **self._creation_kwargs(dtype))

    def to_numpy(self, x: Any) -> np.ndarray:
        """Backend array -> host NumPy array (results boundary only)."""
        if isinstance(x, np.ndarray):
            return x
        # GPU-resident arrays refuse implicit host conversion (and DLPack
        # rejects cross-device import): use the library's explicit
        # device-to-host path, via the compat shim those backends require.
        try:
            from array_api_compat import is_cupy_array, is_torch_array
        except ImportError:
            pass
        else:
            if is_cupy_array(x):
                return x.get()
            if is_torch_array(x):
                return x.detach().cpu().numpy()
        if hasattr(x, "__dlpack__"):
            try:
                return np.from_dlpack(x)
            except (TypeError, ValueError, RuntimeError, BufferError):
                pass
        out = np.asarray(x)
        if out.dtype == object:  # np.asarray silently boxes unknown types
            raise InvalidParameterError(
                f"cannot convert {type(x).__name__!r} from backend "
                f"{self.name!r} to a NumPy array"
            )
        return out

    def describe(self) -> str:
        device = "" if self.device is None else f" on {self.device!r}"
        return f"backend {self.name!r}: {self.xp.__name__}{device}"


def canonical_name(name: str) -> str:
    """Registry key for a user-supplied backend name (case/``_`` folded)."""
    return name.strip().lower().replace("_", "-")


def array_namespace(x: Any) -> Any:
    """The array-API namespace an array belongs to.

    Prefers :func:`array_api_compat.array_namespace` when the compat shim
    is installed (it wraps CuPy/torch into compliant namespaces), falling
    back to the ``__array_namespace__`` protocol, then to NumPy.
    """
    try:
        from array_api_compat import array_namespace as _compat_namespace
    except ImportError:
        pass
    else:
        try:
            return _compat_namespace(x)
        except TypeError:
            pass
    if hasattr(x, "__array_namespace__"):
        return x.__array_namespace__()
    return np


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_LOADERS: dict[str, Callable[[], Backend]] = {}


def register_backend(
    name: str, loader: Callable[[], Backend], *, overwrite: bool = False
) -> None:
    """Register ``loader`` (a zero-argument :class:`Backend` factory).

    The loader runs on every :func:`get_backend` call; raise
    ``ImportError`` from it when the namespace is missing and the registry
    converts that into :class:`BackendUnavailableError`.
    """
    key = canonical_name(name)
    if key in _LOADERS and not overwrite:
        raise InvalidParameterError(
            f"backend {key!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _LOADERS[key] = loader


def available_backends() -> tuple[str, ...]:
    """All registered backend names (installed or not)."""
    return tuple(sorted(_LOADERS))


def installed_backends() -> tuple[str, ...]:
    """The registered backends that actually load in this environment."""
    names = []
    for name in available_backends():
        try:
            _LOADERS[name]()
        except ImportError:
            continue
        names.append(name)
    return tuple(names)


def get_backend(spec: "str | Backend | None" = None) -> Backend:
    """Resolve a backend selection to a live :class:`Backend` handle.

    ``None`` consults ``REPRO_BACKEND`` then falls back to NumPy; a
    :class:`Backend` instance passes through; a string is looked up in
    the registry under its canonical name.
    """
    if isinstance(spec, Backend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    key = canonical_name(str(spec))
    try:
        loader = _LOADERS[key]
    except KeyError:
        raise InvalidParameterError(
            f"unknown backend {spec!r}; registered backends: "
            f"{', '.join(available_backends())}"
        ) from None
    try:
        return loader()
    except ImportError as exc:
        raise BackendUnavailableError(
            f"backend {key!r} is registered but not installed here "
            f"({exc}); installed backends: "
            f"{', '.join(installed_backends())}"
        ) from exc


# ----------------------------------------------------------------------
# built-in loaders
# ----------------------------------------------------------------------
def _load_numpy() -> Backend:
    # NumPy >= 2.0 *is* an array-API namespace; no shim needed.
    return Backend("numpy", np)


def _load_array_api_strict() -> Backend:
    xp = importlib.import_module("array_api_strict")
    return Backend("array-api-strict", xp)


def _compat_wrapped(module: str) -> Any:
    """A compliant namespace for ``module`` via ``array-api-compat``.

    CuPy and torch are not themselves conformant (e.g. ``torch.take``
    flattens), so the compat wrapper is required, not optional.
    """
    importlib.import_module(module)  # surface the real missing-dep error
    try:
        return importlib.import_module(f"array_api_compat.{module}")
    except ImportError as exc:
        raise ImportError(
            f"the {module!r} backend needs the array-api-compat package "
            "to wrap it into a compliant namespace"
        ) from exc


def _load_cupy() -> Backend:
    return Backend("cupy", _compat_wrapped("cupy"))


def _load_torch() -> Backend:
    return Backend("torch", _compat_wrapped("torch"))


register_backend("numpy", _load_numpy)
register_backend("array-api-strict", _load_array_api_strict)
register_backend("cupy", _load_cupy)
register_backend("torch", _load_torch)
