"""Discrete-event simulation of one schedule execution under injected errors.

The engine replays the exact semantics of the analytic model (and of the
Markov evaluator in :mod:`repro.core.evaluator` — the two are cross-checked
statistically in the test suite):

* execution proceeds segment by segment between *verified* positions;
* a fail-stop error interrupts the segment at its arrival time; the run
  pays the elapsed work, the disk recovery cost, and resumes (clean) from
  the last disk checkpoint — in-memory state, latent corruption included,
  is lost;
* silent errors corrupt the segment's output without any symptom; they are
  only caught by verifications: guaranteed ones always detect corruption,
  partial ones with probability ``r`` (fresh draw each attempt);
* detected corruption triggers a memory recovery and a clean restart from
  the last memory checkpoint; missed corruption propagates latently;
* checkpoints are only stored after a *clean* guaranteed verification, so
  stored state is always valid;
* verifications, recoveries and checkpoint transfers themselves are
  error-protected (paper assumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chains import TaskChain
from ..exceptions import InvalidScheduleError, SimulationError
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Action, Schedule
from .errors import ErrorSource
from .trace import EventKind, Trace

__all__ = ["RunResult", "simulate_run"]

#: Default cap on segment attempts before declaring a runaway execution.
DEFAULT_MAX_ATTEMPTS = 10_000_000


@dataclass(frozen=True)
class RunResult:  # repro: allow[RPR005] -- per-run record folded into MC stats
    """Outcome of one simulated execution.

    Attributes
    ----------
    makespan:
        Total wall-clock time to correct completion (seconds).
    fail_stop_errors:
        Number of fail-stop errors that struck.
    silent_errors:
        Number of segments whose output got corrupted by >= 1 silent error.
    silent_detected / silent_missed:
        Detection outcomes at verifications (a single corruption may be
        missed several times before being caught).
    attempts:
        Number of segment executions (>= number of segments).
    trace:
        Full event log, or None when tracing was disabled.
    """

    makespan: float
    fail_stop_errors: int
    silent_errors: int
    silent_detected: int
    silent_missed: int
    attempts: int
    trace: Trace | None = None


def simulate_run(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    error_source: ErrorSource,
    *,
    record_trace: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    costs: CostProfile | None = None,
) -> RunResult:
    """Simulate one execution of ``schedule`` and return its :class:`RunResult`.

    Raises
    ------
    SimulationError
        If the run exceeds ``max_attempts`` segment executions (pathological
        parameters, e.g. error rates so high that no segment ever passes).
    InvalidScheduleError
        If the schedule/chain are inconsistent or the final task lacks the
        guaranteed verification needed for correct completion.
    """
    if schedule.n != chain.n:
        raise InvalidScheduleError(
            f"schedule covers {schedule.n} tasks but the chain has {chain.n}"
        )
    if platform.ls > 0.0 and schedule.action(chain.n) < Action.VERIFY:
        raise InvalidScheduleError(
            "the final task needs a guaranteed verification for the run to "
            "complete correctly under silent errors"
        )

    if costs is None:
        costs = CostProfile.uniform(chain.n, platform)
    stops = [0] + schedule.verified_positions
    if stops[-1] != chain.n:
        # λ_s == 0 and unverified tail: execute it as a final segment.
        stops.append(chain.n)
    n_stops = len(stops)
    stop_index = {pos: j for j, pos in enumerate(stops)}

    last_mem = [0] * n_stops
    last_disk = [0] * n_stops
    mem = disk = 0
    for j, pos in enumerate(stops):
        if pos > 0:
            action = schedule.action(pos)
            if action >= Action.MEMORY:
                mem = pos
            if action == Action.DISK:
                disk = pos
        last_mem[j] = mem
        last_disk[j] = disk

    trace = Trace(enabled=record_trace) if record_trace else Trace(enabled=False)
    t = 0.0
    j = 0
    latent = False
    fail_stops = silent_errors = detected = missed = attempts = 0

    while j < n_stops - 1:
        attempts += 1
        if attempts > max_attempts:
            raise SimulationError(
                f"run exceeded {max_attempts} segment attempts at T{stops[j]} "
                "(error rates too high for this schedule?)"
            )
        pos, nxt = stops[j], stops[j + 1]
        W = chain.segment_weight(pos, nxt)
        trace.record(t, EventKind.SEGMENT_START, pos)

        arrival = error_source.fail_stop_arrival(W)
        if arrival is not None:
            fail_stops += 1
            t += arrival
            trace.record(
                t,
                EventKind.FAIL_STOP,
                pos,
                f"{arrival:.2f}s into segment",
                duration=arrival,
            )
            target = last_disk[j]
            rd = float(costs.RD[target])
            t += rd
            trace.record(t, EventKind.DISK_RECOVERY, target, duration=rd)
            j = stop_index[target]
            latent = False
            continue

        t += W
        trace.record(t, EventKind.SEGMENT_DONE, nxt, duration=W)

        if error_source.silent_strikes(W):
            silent_errors += 1
            trace.record(t, EventKind.SILENT_INTRODUCED, nxt)
            corrupted = True
        else:
            corrupted = latent

        action = schedule.action(nxt) if nxt <= schedule.n else Action.NONE
        is_partial = action == Action.PARTIAL
        if action >= Action.PARTIAL:
            v = float(costs.Vp[nxt] if is_partial else costs.Vg[nxt])
            t += v
            trace.record(
                t,
                EventKind.VERIFICATION,
                nxt,
                "partial" if is_partial else "guaranteed",
                duration=v,
            )
            if corrupted:
                if is_partial and not error_source.partial_detects():
                    missed += 1
                    latent = True
                    trace.record(t, EventKind.SILENT_MISSED, nxt)
                    j += 1
                    continue
                detected += 1
                trace.record(t, EventKind.SILENT_DETECTED, nxt)
                target = last_mem[j]
                rm = float(costs.RM[target])
                t += rm
                trace.record(t, EventKind.MEMORY_RECOVERY, target, duration=rm)
                j = stop_index[target]
                latent = False
                continue

        if action >= Action.MEMORY:
            cm = float(costs.CM[nxt])
            t += cm
            trace.record(t, EventKind.MEMORY_CHECKPOINT, nxt, duration=cm)
        if action == Action.DISK:
            cd = float(costs.CD[nxt])
            t += cd
            trace.record(t, EventKind.DISK_CHECKPOINT, nxt, duration=cd)
        latent = False
        j += 1

    trace.record(t, EventKind.COMPLETE, chain.n)
    return RunResult(
        makespan=t,
        fail_stop_errors=fail_stops,
        silent_errors=silent_errors,
        silent_detected=detected,
        silent_missed=missed,
        attempts=attempts,
        trace=trace if record_trace else None,
    )
