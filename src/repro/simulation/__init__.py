"""Fault-injection simulation: engine, error sources, Monte-Carlo harness."""

from .engine import DEFAULT_MAX_ATTEMPTS, RunResult, simulate_run
from .errors import ErrorSource, PoissonErrorSource, ScriptedErrorSource
from .monte_carlo import MonteCarloResult, run_monte_carlo
from .stats import SampleSummary, confidence_interval, summarize
from .trace import EventKind, Trace, TraceEvent

__all__ = [
    "simulate_run",
    "RunResult",
    "DEFAULT_MAX_ATTEMPTS",
    "ErrorSource",
    "PoissonErrorSource",
    "ScriptedErrorSource",
    "run_monte_carlo",
    "MonteCarloResult",
    "SampleSummary",
    "confidence_interval",
    "summarize",
    "EventKind",
    "Trace",
    "TraceEvent",
]
