"""Fault-injection simulation: engines, error sources, Monte-Carlo harness.

Two engines replay the same model semantics:

* :func:`simulate_run` — the scalar reference engine, one replication at a
  time with full tracing support; the trusted oracle;
* :func:`simulate_batch` — the vectorized production engine, advancing all
  replications of a compiled schedule (:func:`compile_schedule`) at once.

Both produce per-category time accounting (:mod:`~repro.simulation.
breakdown`), cross-validated bitwise between the two.  On top of the
batched engine, :func:`run_adaptive` (:mod:`~repro.simulation.adaptive`)
runs sequential-sampling campaigns that stop at a target relative CI
half-width, streaming moments instead of retaining samples.

The batched kernel is written against the Python array-API standard and
runs on any registered backend (:mod:`repro.simulation.backend`): NumPy
by default, ``array-api-strict`` for conformance CI, CuPy/torch as
drop-in GPU namespaces — selected per call (``backend=...``), via the
CLI (``--backend``) or the ``REPRO_BACKEND`` environment variable.
"""

from .adaptive import (
    DEFAULT_MAX_RUNS,
    DEFAULT_MIN_RUNS,
    DEFAULT_TARGET_RELATIVE_CI,
    AdaptiveResult,
    AdaptiveRound,
    StreamingMoments,
    run_adaptive,
    run_adaptive_parallel,
)
from .backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    Backend,
    array_namespace,
    available_backends,
    get_backend,
    installed_backends,
    register_backend,
)
from .batch import (
    DEFAULT_CHUNK_SIZE,
    BatchResult,
    InverseTransformErrorSource,
    replication_uniform_rows,
    run_compiled,
    simulate_batch,
)
from .breakdown import (
    TIME_CATEGORIES,
    BatchBreakdown,
    aggregate_trace,
    render_breakdown,
    to_analytic_categories,
)
from .compile import CompiledSchedule, compile_schedule
from .engine import DEFAULT_MAX_ATTEMPTS, RunResult, simulate_run
from .errors import ErrorSource, PoissonErrorSource, ScriptedErrorSource
from .parallel import (
    ParallelBatchResult,
    ParallelPlan,
    ParallelRunResult,
    WorkerPlan,
    simulate_parallel,
    simulate_parallel_run,
    worker_uniform_rows,
)
from .monte_carlo import MonteCarloResult, run_monte_carlo
from .stats import SampleSummary, confidence_interval, summarize, t_critical
from .trace import EventKind, Trace, TraceEvent

__all__ = [
    "Backend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "array_namespace",
    "available_backends",
    "get_backend",
    "installed_backends",
    "register_backend",
    "simulate_run",
    "RunResult",
    "DEFAULT_MAX_ATTEMPTS",
    "simulate_batch",
    "run_compiled",
    "BatchResult",
    "DEFAULT_CHUNK_SIZE",
    "compile_schedule",
    "CompiledSchedule",
    "InverseTransformErrorSource",
    "replication_uniform_rows",
    "WorkerPlan",
    "ParallelPlan",
    "ParallelRunResult",
    "ParallelBatchResult",
    "simulate_parallel",
    "simulate_parallel_run",
    "worker_uniform_rows",
    "run_adaptive",
    "run_adaptive_parallel",
    "AdaptiveResult",
    "AdaptiveRound",
    "StreamingMoments",
    "DEFAULT_TARGET_RELATIVE_CI",
    "DEFAULT_MIN_RUNS",
    "DEFAULT_MAX_RUNS",
    "TIME_CATEGORIES",
    "BatchBreakdown",
    "aggregate_trace",
    "to_analytic_categories",
    "render_breakdown",
    "ErrorSource",
    "PoissonErrorSource",
    "ScriptedErrorSource",
    "run_monte_carlo",
    "MonteCarloResult",
    "SampleSummary",
    "confidence_interval",
    "summarize",
    "t_critical",
    "EventKind",
    "Trace",
    "TraceEvent",
]
