"""Fault-injection simulation: engines, error sources, Monte-Carlo harness.

Two engines replay the same model semantics:

* :func:`simulate_run` — the scalar reference engine, one replication at a
  time with full tracing support; the trusted oracle;
* :func:`simulate_batch` — the vectorized production engine, advancing all
  replications of a compiled schedule (:func:`compile_schedule`) at once.
"""

from .batch import (
    DEFAULT_CHUNK_SIZE,
    BatchResult,
    InverseTransformErrorSource,
    replication_uniform_rows,
    run_compiled,
    simulate_batch,
)
from .compile import CompiledSchedule, compile_schedule
from .engine import DEFAULT_MAX_ATTEMPTS, RunResult, simulate_run
from .errors import ErrorSource, PoissonErrorSource, ScriptedErrorSource
from .monte_carlo import MonteCarloResult, run_monte_carlo
from .stats import SampleSummary, confidence_interval, summarize
from .trace import EventKind, Trace, TraceEvent

__all__ = [
    "simulate_run",
    "RunResult",
    "DEFAULT_MAX_ATTEMPTS",
    "simulate_batch",
    "run_compiled",
    "BatchResult",
    "DEFAULT_CHUNK_SIZE",
    "compile_schedule",
    "CompiledSchedule",
    "InverseTransformErrorSource",
    "replication_uniform_rows",
    "ErrorSource",
    "PoissonErrorSource",
    "ScriptedErrorSource",
    "run_monte_carlo",
    "MonteCarloResult",
    "SampleSummary",
    "confidence_interval",
    "summarize",
    "EventKind",
    "Trace",
    "TraceEvent",
]
