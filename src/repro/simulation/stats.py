"""Statistics helpers for Monte-Carlo makespan samples."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from ..exceptions import InvalidParameterError

__all__ = [
    "SampleSummary",
    "summarize",
    "confidence_interval",
    "t_critical",
    "certified_agreement",
]


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a sample of makespans.

    ``ci_low``/``ci_high`` bound the *mean* at the requested confidence
    level (Student-t interval).
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q05: float
    q95: float
    confidence: float
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        """Half width of the confidence interval on the mean.

        ``inf`` for a single-sample summary (no variance estimate exists,
        so nothing is certified); 0 for a zero-variance sample.
        """
        if math.isinf(self.ci_high):
            return math.inf
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_ci_half_width(self) -> float:
        """CI half width over ``|mean|`` (``inf`` when undefined)."""
        if self.mean == 0.0:
            return 0.0 if self.ci_half_width == 0.0 else math.inf
        return self.ci_half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} ± {self.ci_half_width:.2f} "
            f"({self.confidence:.0%} CI) std={self.std:.2f} "
            f"[{self.minimum:.2f}, {self.maximum:.2f}]"
        )


def t_critical(count: int, confidence: float) -> float:
    """Two-sided Student-t critical value for a mean over ``count`` samples.

    ``inf`` for ``count < 2`` — the variance is not estimable, so any
    finite interval would be falsely certain.
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    if count < 2:
        return math.inf
    return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=count - 1))


def confidence_interval(
    samples: np.ndarray, confidence: float = 0.99
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``.

    Degenerate cases are well-defined rather than NaN or falsely tight:

    * a single sample has no variance estimate (0 degrees of freedom), so
      the interval is ``(-inf, inf)`` — one replication certifies nothing;
    * a zero-variance sample (n >= 2) yields the exact ``(x, x)``: the
      Student-t interval with ``s = 0`` genuinely collapses.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise InvalidParameterError("cannot build a confidence interval from 0 samples")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    mean = float(samples.mean())
    if samples.size == 1:
        return -math.inf, math.inf
    sem = float(samples.std(ddof=1)) / math.sqrt(samples.size)
    if sem == 0.0:
        return mean, mean
    t = t_critical(int(samples.size), confidence)
    return mean - t * sem, mean + t * sem


def certified_agreement(summary: SampleSummary, analytic: float) -> bool:
    """The single definition of analytic-vs-sample agreement.

    True when ``analytic`` lies inside a *bounded* CI on the mean.  An
    unbounded interval (single replication) contains everything, so it
    never counts as agreement — containment must certify, not be vacuous.
    Used by both fixed-N and adaptive campaign results so the two can
    never diverge on what "agrees" means.
    """
    return bool(
        not math.isnan(analytic)
        and math.isfinite(summary.ci_half_width)
        and summary.contains(analytic)
    )


def summarize(samples: np.ndarray, confidence: float = 0.99) -> SampleSummary:
    """Build a :class:`SampleSummary` from raw makespan samples."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise InvalidParameterError("cannot summarize 0 samples")
    lo, hi = confidence_interval(samples, confidence)
    return SampleSummary(
        count=int(samples.size),
        mean=float(samples.mean()),
        std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
        minimum=float(samples.min()),
        maximum=float(samples.max()),
        median=float(np.median(samples)),
        q05=float(np.quantile(samples, 0.05)),
        q95=float(np.quantile(samples, 0.95)),
        confidence=confidence,
        ci_low=lo,
        ci_high=hi,
    )
