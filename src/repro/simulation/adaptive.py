"""Adaptive-precision Monte-Carlo orchestration (sequential sampling).

Fixed-replication campaigns are either wastefully large (realistic Table I
platforms reach sub-percent precision within a few hundred replications)
or statistically too small (hot synthetic platforms need tens of
thousands).  :func:`run_adaptive` turns the batched engine into a
*precision-targeted validation service*: it runs the compiled schedule in
**rounds** of geometrically growing total size and stops as soon as the
relative Student-t confidence-interval half-width on the mean makespan
reaches a target (subject to hard ``min_runs`` / ``max_runs`` caps).

No full sample is ever retained.  Each chunk of each round is reduced to

* :class:`StreamingMoments` — count/mean/M2/min/max, merged with the
  parallel (Chan et al.) variance-merge formula across chunks, rounds and
  ``n_jobs`` worker shards;
* per-category time totals (:data:`~repro.simulation.breakdown.
  TIME_CATEGORIES`) and event-counter sums,

so the orchestrator's memory footprint is O(chunk), independent of how
many replications the target ends up requiring.

Reproducibility follows the batch engine's discipline: chunk ``c`` of the
campaign draws from the ``c``-th child of the campaign ``SeedSequence``
(chunks are numbered across rounds), so results are bit-identical for a
given ``(seed, chunk_size, round schedule)`` whatever ``n_jobs`` is.

The returned :class:`AdaptiveResult` carries a convergence report —
rounds run, replications spent, final certified half-width — which the
CLI and the figure drivers surface as the "Monte-Carlo agreement stamp".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError
from ..obs import (
    estimate_eta,
    events as _events,
    get_logger,
    metrics as _metrics,
    span as _span,
)
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Schedule
from .backend import Backend, get_backend
from .batch import (
    DEFAULT_CHUNK_SIZE,
    _chunk_sizes,
    _require_shardable,
    run_compiled,
)
from .breakdown import TIME_CATEGORIES
from .compile import CompiledSchedule, compile_schedule
from .engine import DEFAULT_MAX_ATTEMPTS
from .stats import SampleSummary, certified_agreement, t_critical

__all__ = [
    "StreamingMoments",
    "AdaptiveRound",
    "AdaptiveResult",
    "run_adaptive",
    "run_adaptive_parallel",
    "DEFAULT_TARGET_RELATIVE_CI",
    "DEFAULT_MIN_RUNS",
    "DEFAULT_MAX_RUNS",
]

logger = get_logger(__name__)

#: Default target: certify the mean makespan to a 1% relative CI half-width.
DEFAULT_TARGET_RELATIVE_CI = 0.01
#: Floor on replications before a stop is allowed.  Makespans on realistic
#: (Table I) platforms are heavily right-skewed — most runs are error-free
#: and deterministic, rare error hits add large costs — so a small first
#: round that happens to miss the tail underestimates both mean and
#: variance and would certify a biased value.  At 400 replications every
#: Table I platform has sampled its error tail (tens of silent-error hits
#: in expectation), which restores the t-interval's coverage.
DEFAULT_MIN_RUNS = 400
#: Hard cap on total replications (the campaign reports non-convergence
#: rather than running forever on an unreachable target).
DEFAULT_MAX_RUNS = 1_000_000


@dataclass(frozen=True)
class StreamingMoments:
    """Streaming sample moments: count, mean, M2 (plus min/max).

    Supports Welford-style accumulation from sample blocks and the
    parallel-variance merge, so chunk summaries combine into the exact
    moments of the concatenated sample (to floating-point associativity).
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "StreamingMoments":
        """Reduce a block of samples to its moments."""
        a = np.asarray(samples, dtype=np.float64)
        if a.size == 0:
            return cls()
        mean = float(a.mean())
        m2 = float(np.square(a - mean).sum())
        return cls(
            count=int(a.size),
            mean=mean,
            m2=m2,
            minimum=float(a.min()),
            maximum=float(a.max()),
        )

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two disjoint summaries (Chan et al. parallel merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * (other.count / n)
        m2 = self.m2 + other.m2 + delta * delta * (self.count * other.count / n)
        return StreamingMoments(
            count=n,
            mean=mean,
            m2=m2,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 when fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean (0 when fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self.std / math.sqrt(self.count)

    def half_width(self, confidence: float) -> float:
        """Student-t CI half-width on the mean.

        Mirrors :func:`repro.simulation.stats.confidence_interval`'s
        degenerate cases: ``inf`` below two samples, 0 at zero variance.
        """
        if self.count < 2:
            return math.inf
        sem = self.sem
        if sem == 0.0:
            return 0.0
        return t_critical(self.count, confidence) * sem

    def relative_half_width(self, confidence: float) -> float:
        """Half-width over ``|mean|`` — the adaptive stopping criterion."""
        hw = self.half_width(confidence)
        if hw == 0.0:
            return 0.0
        if self.mean == 0.0:
            return math.inf
        return hw / abs(self.mean)

    def ci(self, confidence: float) -> tuple[float, float]:
        hw = self.half_width(confidence)
        if math.isinf(hw):
            return -math.inf, math.inf
        return self.mean - hw, self.mean + hw

    def to_summary(self, confidence: float) -> SampleSummary:
        """A :class:`SampleSummary` view (quantiles are NaN: not streamed)."""
        lo, hi = self.ci(confidence)
        return SampleSummary(
            count=self.count,
            mean=self.mean,
            std=self.std,
            minimum=self.minimum,
            maximum=self.maximum,
            median=float("nan"),
            q05=float("nan"),
            q95=float("nan"),
            confidence=confidence,
            ci_low=lo,
            ci_high=hi,
        )


def _validate_adaptive_params(
    target_relative_ci: float,
    min_runs: int,
    max_runs: int,
    growth: float,
    chunk_size: int,
    confidence: float,
) -> None:
    """Shared parameter validation for the adaptive drivers."""
    if not 0.0 < target_relative_ci:
        raise InvalidParameterError(
            f"target_relative_ci must be > 0, got {target_relative_ci!r}"
        )
    if min_runs < 1:
        raise InvalidParameterError(f"min_runs must be >= 1, got {min_runs}")
    if max_runs < min_runs:
        raise InvalidParameterError(
            f"max_runs ({max_runs}) must be >= min_runs ({min_runs})"
        )
    if growth <= 1.0:
        raise InvalidParameterError(f"growth must be > 1, got {growth!r}")
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    t_critical(2, confidence)  # validates the confidence level


@dataclass(frozen=True)
class _ChunkStats:
    """One chunk reduced to O(1) state (what worker processes ship back)."""

    moments: StreamingMoments
    category_totals: np.ndarray  # (len(TIME_CATEGORIES),)
    fail_stop_errors: int
    silent_errors: int
    silent_detected: int
    silent_missed: int
    attempts: int
    steps: int


def _chunk_stats(
    compiled: CompiledSchedule,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
    backend: "str | Backend | None" = None,
) -> _ChunkStats:
    """Worker entry point (module-level so it pickles for ``n_jobs``)."""
    batch = run_compiled(
        compiled, n, np.random.default_rng(child), max_attempts, backend
    )
    return _ChunkStats(
        moments=StreamingMoments.from_samples(batch.makespans),
        category_totals=batch.time_categories.sum(axis=1),
        fail_stop_errors=int(batch.fail_stop_errors.sum()),
        silent_errors=int(batch.silent_errors.sum()),
        silent_detected=int(batch.silent_detected.sum()),
        silent_missed=int(batch.silent_missed.sum()),
        attempts=int(batch.attempts.sum()),
        steps=batch.steps,
    )


def _chunk_stats_observed(
    compiled: CompiledSchedule,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
    backend: "str | Backend | None" = None,
):
    """Worker entry point that ships its kernel metrics home.

    Worker processes inherit no ambient instrumentation, so the chunk
    runs under a private registry and event bus whose snapshots ride
    back with the stats for the parent to merge/replay.
    """
    from ..obs import EventBus, MetricsRegistry, instrument

    reg = MetricsRegistry()
    bus = EventBus()
    with instrument(reg, events=bus):
        stats = _chunk_stats(compiled, child, n, max_attempts, backend)
    return stats, reg.snapshot(), bus.snapshot()


def _record_round(
    sp, reg, bus, r: "AdaptiveRound", *, target: float, elapsed_s: float
) -> None:
    """Stamp one round's stats onto its span, the metrics registry, and
    the ambient event bus (``mc.round``, carrying the ETA estimate).

    Non-finite CI widths (first round with < 2 samples) are stringified
    for the trace and nulled for the event payload so both stay strictly
    JSON-serializable.
    """
    sp.set(
        index=r.index,
        reps=r.reps,
        total_reps=r.total_reps,
        mean=r.mean,
        half_width=(
            r.half_width if math.isfinite(r.half_width) else "inf"
        ),
        relative_half_width=(
            r.relative_half_width
            if math.isfinite(r.relative_half_width)
            else "inf"
        ),
    )
    reg.counter("mc.rounds").inc()
    reg.counter("mc.replications").inc(r.reps)
    if bus.enabled:
        bus.emit(
            "mc.round",
            index=r.index,
            reps=r.reps,
            total_reps=r.total_reps,
            mean=r.mean,
            half_width=(
                r.half_width if math.isfinite(r.half_width) else None
            ),
            relative_half_width=(
                r.relative_half_width
                if math.isfinite(r.relative_half_width)
                else None
            ),
            target=target,
            **estimate_eta(
                r.total_reps, r.relative_half_width, target, elapsed_s
            ),
        )


@dataclass(frozen=True)
class AdaptiveRound:
    """Convergence-report entry for one sampling round."""

    index: int
    reps: int  #: replications added this round
    total_reps: int  #: cumulative replications after the round
    mean: float  #: running mean makespan (s)
    half_width: float  #: CI half-width on the mean (s)
    relative_half_width: float  #: half-width / mean — the stop criterion


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of an adaptive-precision campaign.

    ``converged`` is True when the target relative half-width was reached
    within the caps; otherwise the campaign stopped at ``max_runs`` and
    the achieved precision is whatever ``relative_half_width`` reports.
    """

    target_relative_ci: float
    confidence: float
    converged: bool
    moments: StreamingMoments
    rounds: tuple[AdaptiveRound, ...]
    category_totals: np.ndarray
    fail_stop_errors: int
    silent_errors: int
    silent_detected: int
    silent_missed: int
    attempts: int
    steps: int
    analytic: float = float("nan")
    min_runs: int = DEFAULT_MIN_RUNS
    max_runs: int = DEFAULT_MAX_RUNS

    @property
    def reps_used(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> float:
        return self.moments.mean

    @property
    def half_width(self) -> float:
        return self.moments.half_width(self.confidence)

    @property
    def relative_half_width(self) -> float:
        return self.moments.relative_half_width(self.confidence)

    @property
    def summary(self) -> SampleSummary:
        return self.moments.to_summary(self.confidence)

    def breakdown_means(self) -> dict[str, float]:
        """Mean seconds per replication for each accounting category."""
        n = max(self.reps_used, 1)
        return {
            c: float(self.category_totals[k]) / n
            for k, c in enumerate(TIME_CATEGORIES)
        }

    @property
    def agrees_with_analytic(self) -> bool:
        """True when the analytic value lies inside a *bounded* certified CI
        (see :func:`~repro.simulation.stats.certified_agreement` — the
        same rule fixed-N campaigns use)."""
        return certified_agreement(self.summary, self.analytic)

    @property
    def relative_gap(self) -> float:
        if math.isnan(self.analytic) or self.analytic == 0.0:
            return float("nan")
        return (self.mean - self.analytic) / self.analytic

    def convergence_report(self) -> str:
        """Multi-line rounds/reps/precision report."""
        status = (
            f"certified ±{self.relative_half_width:.3%}"
            if self.converged
            else f"NOT CONVERGED (reached ±{self.relative_half_width:.3%} "
            f"at the {self.max_runs}-replication cap)"
        )
        lines = [
            f"adaptive campaign: {status} at {self.confidence:.0%} confidence "
            f"(target ±{self.target_relative_ci:.3%}) — "
            f"{len(self.rounds)} round(s), {self.reps_used} replications"
        ]
        for r in self.rounds:
            hw = (
                "inf"
                if math.isinf(r.relative_half_width)
                else f"{r.relative_half_width:.3%}"
            )
            lines.append(
                f"  round {r.index}: +{r.reps} reps (total {r.total_reps}) "
                f"mean={r.mean:.2f}s ±{hw}"
            )
        return "\n".join(lines)


def run_adaptive(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    *,
    target_relative_ci: float = DEFAULT_TARGET_RELATIVE_CI,
    confidence: float = 0.99,
    min_runs: int = DEFAULT_MIN_RUNS,
    max_runs: int = DEFAULT_MAX_RUNS,
    growth: float = 2.0,
    seed: int | np.random.SeedSequence | None = 0,
    costs: CostProfile | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    analytic: float = float("nan"),
    backend: "str | Backend | None" = None,
) -> AdaptiveResult:
    """Simulate ``schedule`` until the mean makespan is certified.

    Rounds of replications are drawn with geometrically growing cumulative
    size (``min_runs``, then ``growth`` times the running total) until the
    relative CI half-width on the mean reaches ``target_relative_ci`` —
    never before ``min_runs`` replications, never beyond ``max_runs``.

    Parameters mirror :func:`~repro.simulation.batch.simulate_batch` where
    shared (including the array-API ``backend`` the lockstep kernel runs
    on); ``analytic`` optionally attaches the reference expectation the
    certified interval is checked against.
    """
    _validate_adaptive_params(
        target_relative_ci, min_runs, max_runs, growth, chunk_size, confidence
    )
    be = get_backend(backend)  # resolve (and fail) before any work

    compiled = compile_schedule(chain, platform, schedule, costs)
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )

    moments = StreamingMoments()
    category_totals = np.zeros(len(TIME_CATEGORIES), dtype=np.float64)
    counters = dict.fromkeys(
        ("fail_stop_errors", "silent_errors", "silent_detected", "silent_missed"),
        0,
    )
    attempts = 0
    steps = 0
    rounds: list[AdaptiveRound] = []

    # The worker pool is created lazily on the first multi-chunk round:
    # campaigns converging within one chunk (the common case on Table I
    # platforms) never pay the process spawns.
    pool = None
    shard = n_jobs is not None and n_jobs > 1
    if shard:
        _require_shardable(be)
    reg = _metrics()
    bus = _events()
    observing = reg.enabled or bus.enabled
    t0 = perf_counter()
    try:
        with _span(
            "mc.adaptive",
            target_relative_ci=target_relative_ci,
            confidence=confidence,
        ):
            total = 0
            next_total = min(min_runs, max_runs)
            converged = False
            while True:
                round_n = next_total - total
                with _span("mc.round") as sp:
                    sizes = _chunk_sizes(round_n, chunk_size)
                    children = seed_seq.spawn(len(sizes))
                    if shard and len(sizes) > 1:
                        entry = (
                            _chunk_stats_observed
                            if observing
                            else _chunk_stats
                        )
                        args = (
                            [compiled] * len(sizes),
                            children,
                            sizes,
                            [max_attempts] * len(sizes),
                            # workers re-resolve the backend by name
                            [be.name] * len(sizes),
                        )
                        if pool is None:
                            from concurrent.futures import ProcessPoolExecutor

                            pool = ProcessPoolExecutor(max_workers=n_jobs)
                        stats = list(pool.map(entry, *args))
                        if observing:
                            for _, snap, esnap in stats:
                                reg.merge_snapshot(snap)
                                bus.replay(esnap)
                            stats = [s for s, _, _ in stats]
                    else:
                        stats = [
                            _chunk_stats(compiled, child, n, max_attempts, be)
                            for child, n in zip(children, sizes)
                        ]
                    for s in stats:
                        moments = moments.merge(s.moments)
                        category_totals += s.category_totals
                        counters["fail_stop_errors"] += s.fail_stop_errors
                        counters["silent_errors"] += s.silent_errors
                        counters["silent_detected"] += s.silent_detected
                        counters["silent_missed"] += s.silent_missed
                        attempts += s.attempts
                        steps = max(steps, s.steps)
                    total += round_n
                    rel = moments.relative_half_width(confidence)
                    rounds.append(
                        AdaptiveRound(
                            index=len(rounds),
                            reps=round_n,
                            total_reps=total,
                            mean=moments.mean,
                            half_width=moments.half_width(confidence),
                            relative_half_width=rel,
                        )
                    )
                    _record_round(
                        sp,
                        reg,
                        bus,
                        rounds[-1],
                        target=target_relative_ci,
                        elapsed_s=perf_counter() - t0,
                    )
                converged = total >= min_runs and rel <= target_relative_ci
                if converged or total >= max_runs:
                    break
                next_total = min(
                    max_runs, max(total + 1, math.ceil(total * growth))
                )
    finally:
        if pool is not None:
            pool.shutdown()
    if converged:
        reg.counter("mc.converged").inc()
    if bus.enabled:
        bus.emit(
            "mc.converged" if converged else "mc.capped",
            total_reps=total,
            rounds=len(rounds),
            mean=moments.mean,
            relative_half_width=(
                rounds[-1].relative_half_width
                if math.isfinite(rounds[-1].relative_half_width)
                else None
            ),
            target=target_relative_ci,
            wall_s=perf_counter() - t0,
        )
    logger.debug(
        "run_adaptive: converged=%s rounds=%d reps=%d rel_hw=%.4g",
        converged,
        len(rounds),
        total,
        rounds[-1].relative_half_width,
    )

    return AdaptiveResult(
        target_relative_ci=target_relative_ci,
        confidence=confidence,
        converged=converged,
        moments=moments,
        rounds=tuple(rounds),
        category_totals=category_totals,
        analytic=analytic,
        min_runs=min_runs,
        max_runs=max_runs,
        attempts=attempts,
        steps=steps,
        **counters,
    )


def run_adaptive_parallel(
    plan,
    platform: Platform,
    *,
    target_relative_ci: float = DEFAULT_TARGET_RELATIVE_CI,
    confidence: float = 0.99,
    min_runs: int = DEFAULT_MIN_RUNS,
    max_runs: int = DEFAULT_MAX_RUNS,
    growth: float = 2.0,
    seed: int | np.random.SeedSequence | None = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    analytic: float = float("nan"),
    backend: "str | Backend | None" = None,
) -> AdaptiveResult:
    """Adaptive-precision campaign over a p-worker :class:`~repro.
    simulation.parallel.ParallelPlan`.

    The parallel analogue of :func:`run_adaptive`: rounds of
    :func:`~repro.simulation.parallel.simulate_parallel` campaigns grow
    geometrically until the relative Student-t CI half-width on the mean
    *wall-clock* makespan reaches ``target_relative_ci``.  All rounds
    draw from one campaign ``SeedSequence`` (each round's chunks consume
    the next children), so a campaign is reproducible for a given
    ``(seed, chunk_size, round schedule)`` whatever ``n_jobs`` is —
    though, unlike fixed-``n_runs`` campaigns, the sample depends on the
    round schedule itself.

    ``category_totals`` / error counters aggregate over every busy
    worker's busy trajectory; ``attempts`` counts segment attempts
    summed over workers and replications.
    """
    from .parallel import simulate_parallel  # local: avoids import cycle

    _validate_adaptive_params(
        target_relative_ci, min_runs, max_runs, growth, chunk_size, confidence
    )
    get_backend(backend)  # resolve (and fail) before any work
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )

    moments = StreamingMoments()
    category_totals = np.zeros(len(TIME_CATEGORIES), dtype=np.float64)
    counters = dict.fromkeys(
        ("fail_stop_errors", "silent_errors", "silent_detected", "silent_missed"),
        0,
    )
    attempts = 0
    steps = 0
    rounds: list[AdaptiveRound] = []
    reg = _metrics()
    bus = _events()
    t0 = perf_counter()

    with _span(
        "mc.adaptive",
        target_relative_ci=target_relative_ci,
        confidence=confidence,
        parallel=True,
    ):
        total = 0
        next_total = min(min_runs, max_runs)
        converged = False
        while True:
            round_n = next_total - total
            with _span("mc.round") as sp:
                batch = simulate_parallel(
                    plan,
                    platform,
                    round_n,
                    seed=seed_seq,
                    chunk_size=chunk_size,
                    n_jobs=n_jobs,
                    max_attempts=max_attempts,
                    backend=backend,
                )
                moments = moments.merge(
                    StreamingMoments.from_samples(batch.makespans)
                )
                for res in batch.worker_results:
                    if res is None:
                        continue
                    category_totals += res.time_categories.sum(axis=1)
                counters["fail_stop_errors"] += int(batch.fail_stop_errors.sum())
                counters["silent_errors"] += int(batch.silent_errors.sum())
                counters["silent_detected"] += int(batch.silent_detected.sum())
                counters["silent_missed"] += int(batch.silent_missed.sum())
                attempts += int(batch.attempts.sum())
                steps = max(steps, batch.steps)
                total += round_n
                rel = moments.relative_half_width(confidence)
                rounds.append(
                    AdaptiveRound(
                        index=len(rounds),
                        reps=round_n,
                        total_reps=total,
                        mean=moments.mean,
                        half_width=moments.half_width(confidence),
                        relative_half_width=rel,
                    )
                )
                _record_round(
                    sp,
                    reg,
                    bus,
                    rounds[-1],
                    target=target_relative_ci,
                    elapsed_s=perf_counter() - t0,
                )
            converged = total >= min_runs and rel <= target_relative_ci
            if converged or total >= max_runs:
                break
            next_total = min(max_runs, max(total + 1, math.ceil(total * growth)))
    if converged:
        reg.counter("mc.converged").inc()
    if bus.enabled:
        bus.emit(
            "mc.converged" if converged else "mc.capped",
            total_reps=total,
            rounds=len(rounds),
            mean=moments.mean,
            relative_half_width=(
                rounds[-1].relative_half_width
                if math.isfinite(rounds[-1].relative_half_width)
                else None
            ),
            target=target_relative_ci,
            wall_s=perf_counter() - t0,
        )
    logger.debug(
        "run_adaptive_parallel: converged=%s rounds=%d reps=%d rel_hw=%.4g",
        converged,
        len(rounds),
        total,
        rounds[-1].relative_half_width,
    )

    return AdaptiveResult(
        target_relative_ci=target_relative_ci,
        confidence=confidence,
        converged=converged,
        moments=moments,
        rounds=tuple(rounds),
        category_totals=category_totals,
        analytic=analytic,
        min_runs=min_runs,
        max_runs=max_runs,
        attempts=attempts,
        steps=steps,
        **counters,
    )
