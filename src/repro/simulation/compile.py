"""Lower a :class:`~repro.core.schedule.Schedule` into flat segment arrays.

The scalar engine (:mod:`repro.simulation.engine`) re-derives everything it
needs — segment weights, rollback targets, per-position costs — inside its
replay loop.  The batched engine (:mod:`repro.simulation.batch`) instead
advances *all* replications through the same segment structure at once, so
that structure is compiled ahead of time into a :class:`CompiledSchedule`:
one flat array entry per *segment* (the stretch of work between two
consecutive verified positions), indexable with a vector of per-replication
segment cursors.

Segment ``k`` runs from verified position ``stops[k]`` (exclusive) to
``stops[k+1]`` (inclusive); a replication is complete once its cursor
reaches ``n_segments``.  For each segment the compiler precomputes:

* ``work`` — the segment weight ``W`` (s);
* ``p_silent`` — the probability ``1 - e^{-λ_s W}`` that at least one
  silent error corrupts the segment;
* ``is_partial`` / ``has_verification`` — what kind of verification (if
  any) guards the segment's end;
* ``verification_cost`` — ``V`` or ``V*`` at the end position (0 if none);
* ``memory_ckpt_cost`` / ``disk_ckpt_cost`` — checkpoint costs paid after
  a clean guaranteed verification (0 if not taken);
* ``fail_target`` / ``fail_recovery_cost`` — the segment cursor and disk
  recovery cost ``R_D`` of a fail-stop rollback from this segment;
* ``silent_target`` / ``silent_recovery_cost`` — the segment cursor and
  memory recovery cost ``R_M`` of a detected-corruption rollback.

Lowering is array-API generic: the per-segment values are gathered into
plain Python lists and materialized through an explicit
:class:`~repro.simulation.backend.Backend` (``xp.asarray`` with explicit
dtypes, ``xp.expm1`` for the silent-error probabilities).  By default the
arrays are plain (picklable, read-only) NumPy buffers, so a compiled
schedule can be shipped to worker processes when the batch engine shards
replications across jobs; the engine moves them onto its own backend once
per kernel call.  Compilation performs the same validation as the scalar
engine; the two therefore accept exactly the same inputs, which the test
suite pins with golden-value and same-seed cross-validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidScheduleError
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Action, Schedule
from .backend import Backend, array_namespace, get_backend

__all__ = ["CompiledSchedule", "compile_schedule"]


@dataclass(frozen=True)
class CompiledSchedule:
    """Flat per-segment arrays driving the batched replay (see module doc).

    All arrays have length :attr:`n_segments`; ``stops`` has one extra
    entry (the 1-based verified positions bounding the segments, starting
    at the virtual ``T0``).  They live on whatever backend compiled them
    (NumPy unless a backend was passed to :func:`compile_schedule`).
    """

    n_tasks: int
    stops: Any  # int64, n_segments + 1
    work: Any  # float64
    p_silent: Any  # float64, 1 - e^{-λ_s W}
    is_partial: Any  # bool
    has_verification: Any  # bool
    verification_cost: Any  # float64
    memory_ckpt_cost: Any  # float64
    disk_ckpt_cost: Any  # float64
    fail_target: Any  # int64 segment cursor after a fail-stop
    fail_recovery_cost: Any  # float64 (R_D at the rollback target)
    silent_target: Any  # int64 segment cursor after a detection
    silent_recovery_cost: Any  # float64 (R_M at the rollback target)
    lf: float
    ls: float
    recall: float
    total_work: float  #: one-pass chain weight (s) — the useful-work floor
    #: of the per-category accounting (work - total_work = re-execution).

    @property
    def n_segments(self) -> int:
        """Number of segments a replication must clear to complete."""
        return int(self.work.shape[0])

    def describe(self) -> str:
        """One-line human-readable summary."""
        total = float(array_namespace(self.work).sum(self.work))
        return (
            f"compiled schedule: {self.n_tasks} tasks -> "
            f"{self.n_segments} segments, total work {total:g}s, "
            f"λ_f={self.lf:g}/s λ_s={self.ls:g}/s r={self.recall:g}"
        )


def compile_schedule(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    costs: CostProfile | None = None,
    *,
    backend: "str | Backend | None" = "numpy",
) -> CompiledSchedule:
    """Compile ``schedule`` on ``(chain, platform)`` into flat segment arrays.

    ``backend`` selects the array namespace the segment arrays are
    materialized on — NumPy by default (and the only picklable choice for
    ``n_jobs`` sharding); the engine itself accepts a NumPy-compiled
    schedule for any execution backend.

    Raises
    ------
    InvalidScheduleError
        Under exactly the conditions the scalar engine rejects: a
        chain/schedule length mismatch, or a final task without a
        guaranteed verification while silent errors are possible.
    """
    if schedule.n != chain.n:
        raise InvalidScheduleError(
            f"schedule covers {schedule.n} tasks but the chain has {chain.n}"
        )
    if platform.ls > 0.0 and schedule.action(chain.n) < Action.VERIFY:
        raise InvalidScheduleError(
            "the final task needs a guaranteed verification for the run to "
            "complete correctly under silent errors"
        )
    if costs is None:
        costs = CostProfile.uniform(chain.n, platform)
    be = get_backend(backend)
    xp = be.xp

    stops = [0] + schedule.verified_positions
    if stops[-1] != chain.n:
        # λ_s == 0 and unverified tail: execute it as a final segment.
        stops.append(chain.n)
    stop_index = {pos: j for j, pos in enumerate(stops)}
    n_segs = len(stops) - 1

    work = [0.0] * n_segs
    is_partial = [False] * n_segs
    has_verif = [False] * n_segs
    verif_cost = [0.0] * n_segs
    cm_cost = [0.0] * n_segs
    cd_cost = [0.0] * n_segs
    fail_target = [0] * n_segs
    fail_cost = [0.0] * n_segs
    silent_target = [0] * n_segs
    silent_cost = [0.0] * n_segs

    mem = disk = 0
    for k in range(n_segs):
        pos, nxt = stops[k], stops[k + 1]
        # Rollback targets are the last checkpoints at or before stops[k].
        if pos > 0 and schedule.action(pos) >= Action.MEMORY:
            mem = pos
        if pos > 0 and schedule.action(pos) == Action.DISK:
            disk = pos
        work[k] = float(chain.segment_weight(pos, nxt))
        fail_target[k] = stop_index[disk]
        fail_cost[k] = float(costs.RD[disk])
        silent_target[k] = stop_index[mem]
        silent_cost[k] = float(costs.RM[mem])

        action = schedule.action(nxt)
        if action >= Action.PARTIAL:
            has_verif[k] = True
            is_partial[k] = action == Action.PARTIAL
            verif_cost[k] = float(
                costs.Vp[nxt] if is_partial[k] else costs.Vg[nxt]
            )
        if action >= Action.MEMORY:
            cm_cost[k] = float(costs.CM[nxt])
        if action == Action.DISK:
            cd_cost[k] = float(costs.CD[nxt])

    ls = platform.ls
    work_arr = be.asarray(work, dtype=xp.float64)
    if ls > 0.0:
        p_silent = -xp.expm1((-ls) * work_arr)
    else:
        p_silent = be.zeros(n_segs, dtype=xp.float64)

    arrays = dict(
        stops=be.asarray(stops, dtype=xp.int64),
        work=work_arr,
        p_silent=p_silent,
        is_partial=be.asarray(is_partial, dtype=xp.bool),
        has_verification=be.asarray(has_verif, dtype=xp.bool),
        verification_cost=be.asarray(verif_cost, dtype=xp.float64),
        memory_ckpt_cost=be.asarray(cm_cost, dtype=xp.float64),
        disk_ckpt_cost=be.asarray(cd_cost, dtype=xp.float64),
        fail_target=be.asarray(fail_target, dtype=xp.int64),
        fail_recovery_cost=be.asarray(fail_cost, dtype=xp.float64),
        silent_target=be.asarray(silent_target, dtype=xp.int64),
        silent_recovery_cost=be.asarray(silent_cost, dtype=xp.float64),
    )
    for arr in arrays.values():
        if isinstance(arr, np.ndarray):
            arr.setflags(write=False)
    return CompiledSchedule(
        n_tasks=chain.n,
        lf=float(platform.lf),
        ls=float(ls),
        recall=float(platform.r),
        total_work=float(chain.total_weight),
        **arrays,
    )
