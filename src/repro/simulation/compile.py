"""Lower a :class:`~repro.core.schedule.Schedule` into flat segment arrays.

The scalar engine (:mod:`repro.simulation.engine`) re-derives everything it
needs — segment weights, rollback targets, per-position costs — inside its
replay loop.  The batched engine (:mod:`repro.simulation.batch`) instead
advances *all* replications through the same segment structure at once, so
that structure is compiled ahead of time into a :class:`CompiledSchedule`:
one flat array entry per *segment* (the stretch of work between two
consecutive verified positions), indexable with a vector of per-replication
segment cursors.

Segment ``k`` runs from verified position ``stops[k]`` (exclusive) to
``stops[k+1]`` (inclusive); a replication is complete once its cursor
reaches ``n_segments``.  For each segment the compiler precomputes:

* ``work`` — the segment weight ``W`` (s);
* ``p_silent`` — the probability ``1 - e^{-λ_s W}`` that at least one
  silent error corrupts the segment;
* ``is_partial`` / ``has_verification`` — what kind of verification (if
  any) guards the segment's end;
* ``verification_cost`` — ``V`` or ``V*`` at the end position (0 if none);
* ``memory_ckpt_cost`` / ``disk_ckpt_cost`` — checkpoint costs paid after
  a clean guaranteed verification (0 if not taken);
* ``fail_target`` / ``fail_recovery_cost`` — the segment cursor and disk
  recovery cost ``R_D`` of a fail-stop rollback from this segment;
* ``silent_target`` / ``silent_recovery_cost`` — the segment cursor and
  memory recovery cost ``R_M`` of a detected-corruption rollback.

The arrays are plain (picklable) NumPy buffers, so a compiled schedule can
be shipped to worker processes when the batch engine shards replications
across jobs.  Compilation performs the same validation as the scalar
engine; the two therefore accept exactly the same inputs, which the test
suite pins with golden-value and same-seed cross-validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidScheduleError
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Action, Schedule

__all__ = ["CompiledSchedule", "compile_schedule"]


@dataclass(frozen=True)
class CompiledSchedule:
    """Flat per-segment arrays driving the batched replay (see module doc).

    All arrays have length :attr:`n_segments`; ``stops`` has one extra
    entry (the 1-based verified positions bounding the segments, starting
    at the virtual ``T0``).
    """

    n_tasks: int
    stops: np.ndarray  # int64, n_segments + 1
    work: np.ndarray  # float64
    p_silent: np.ndarray  # float64, 1 - e^{-λ_s W}
    is_partial: np.ndarray  # bool
    has_verification: np.ndarray  # bool
    verification_cost: np.ndarray  # float64
    memory_ckpt_cost: np.ndarray  # float64
    disk_ckpt_cost: np.ndarray  # float64
    fail_target: np.ndarray  # int64 segment cursor after a fail-stop
    fail_recovery_cost: np.ndarray  # float64 (R_D at the rollback target)
    silent_target: np.ndarray  # int64 segment cursor after a detection
    silent_recovery_cost: np.ndarray  # float64 (R_M at the rollback target)
    lf: float
    ls: float
    recall: float
    total_work: float  #: one-pass chain weight (s) — the useful-work floor
    #: of the per-category accounting (work - total_work = re-execution).

    @property
    def n_segments(self) -> int:
        """Number of segments a replication must clear to complete."""
        return int(self.work.size)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"compiled schedule: {self.n_tasks} tasks -> "
            f"{self.n_segments} segments, total work {self.work.sum():g}s, "
            f"λ_f={self.lf:g}/s λ_s={self.ls:g}/s r={self.recall:g}"
        )


def compile_schedule(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    costs: CostProfile | None = None,
) -> CompiledSchedule:
    """Compile ``schedule`` on ``(chain, platform)`` into flat segment arrays.

    Raises
    ------
    InvalidScheduleError
        Under exactly the conditions the scalar engine rejects: a
        chain/schedule length mismatch, or a final task without a
        guaranteed verification while silent errors are possible.
    """
    if schedule.n != chain.n:
        raise InvalidScheduleError(
            f"schedule covers {schedule.n} tasks but the chain has {chain.n}"
        )
    if platform.ls > 0.0 and schedule.action(chain.n) < Action.VERIFY:
        raise InvalidScheduleError(
            "the final task needs a guaranteed verification for the run to "
            "complete correctly under silent errors"
        )
    if costs is None:
        costs = CostProfile.uniform(chain.n, platform)

    stops = [0] + schedule.verified_positions
    if stops[-1] != chain.n:
        # λ_s == 0 and unverified tail: execute it as a final segment.
        stops.append(chain.n)
    stop_index = {pos: j for j, pos in enumerate(stops)}
    n_segs = len(stops) - 1

    work = np.empty(n_segs, dtype=np.float64)
    is_partial = np.zeros(n_segs, dtype=bool)
    has_verif = np.zeros(n_segs, dtype=bool)
    verif_cost = np.zeros(n_segs, dtype=np.float64)
    cm_cost = np.zeros(n_segs, dtype=np.float64)
    cd_cost = np.zeros(n_segs, dtype=np.float64)
    fail_target = np.empty(n_segs, dtype=np.int64)
    fail_cost = np.empty(n_segs, dtype=np.float64)
    silent_target = np.empty(n_segs, dtype=np.int64)
    silent_cost = np.empty(n_segs, dtype=np.float64)

    mem = disk = 0
    for k in range(n_segs):
        pos, nxt = stops[k], stops[k + 1]
        # Rollback targets are the last checkpoints at or before stops[k].
        if pos > 0 and schedule.action(pos) >= Action.MEMORY:
            mem = pos
        if pos > 0 and schedule.action(pos) == Action.DISK:
            disk = pos
        work[k] = chain.segment_weight(pos, nxt)
        fail_target[k] = stop_index[disk]
        fail_cost[k] = float(costs.RD[disk])
        silent_target[k] = stop_index[mem]
        silent_cost[k] = float(costs.RM[mem])

        action = schedule.action(nxt)
        if action >= Action.PARTIAL:
            has_verif[k] = True
            is_partial[k] = action == Action.PARTIAL
            verif_cost[k] = float(
                costs.Vp[nxt] if is_partial[k] else costs.Vg[nxt]
            )
        if action >= Action.MEMORY:
            cm_cost[k] = float(costs.CM[nxt])
        if action == Action.DISK:
            cd_cost[k] = float(costs.CD[nxt])

    ls = platform.ls
    p_silent = (
        -np.expm1(-ls * work) if ls > 0.0 else np.zeros(n_segs, dtype=np.float64)
    )

    arrays = dict(
        stops=np.asarray(stops, dtype=np.int64),
        work=work,
        p_silent=p_silent,
        is_partial=is_partial,
        has_verification=has_verif,
        verification_cost=verif_cost,
        memory_ckpt_cost=cm_cost,
        disk_ckpt_cost=cd_cost,
        fail_target=fail_target,
        fail_recovery_cost=fail_cost,
        silent_target=silent_target,
        silent_recovery_cost=silent_cost,
    )
    for arr in arrays.values():
        arr.setflags(write=False)
    return CompiledSchedule(
        n_tasks=chain.n,
        lf=float(platform.lf),
        ls=float(ls),
        recall=float(platform.r),
        total_work=float(chain.total_weight),
        **arrays,
    )
