"""Error sources for the fault-injection simulator.

The simulator asks an :class:`ErrorSource` two questions per segment
attempt:

* :meth:`ErrorSource.fail_stop_arrival` — the arrival time of the next
  fail-stop error, to be compared with the segment length;
* :meth:`ErrorSource.silent_strikes` — whether at least one silent error
  corrupts a segment of work ``W``;

plus one per partial verification with corrupted data:
:meth:`ErrorSource.partial_detects`.

:class:`PoissonErrorSource` implements the paper's stochastic model
(independent Poisson processes, detection by recall ``r``);
:class:`ScriptedErrorSource` replays a predetermined outcome sequence, which
is what failure-injection unit tests use to exercise every simulator branch
deterministically.

**Per-worker stream convention (multi-worker simulation).**  An error
source instance is a *stateful stream of outcomes*: every call consumes
the next draw.  A p-worker execution
(:func:`~repro.simulation.parallel.simulate_parallel_run`) therefore
requires one instance per busy worker — sharing an instance would
silently interleave one stream between the interleaved per-worker
simulations (a scripted fail-stop meant for worker 0 could strike
worker 1 instead), so sharing raises
:class:`~repro.exceptions.SimulationError`.  The batched engine follows
the same discipline with seeds: :func:`~repro.simulation.parallel.
simulate_parallel` spawns one ``SeedSequence`` grandchild per worker
*slot* (idle slots included, so worker ``w``'s stream depends only on
``(seed, n_runs, chunk_size, w)``), and :func:`~repro.simulation.
parallel.worker_uniform_rows` regenerates any single worker/replication
stream for scalar replay.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

import numpy as np

from ..exceptions import SimulationError
from ..platforms import Platform

__all__ = ["ErrorSource", "PoissonErrorSource", "ScriptedErrorSource"]


class ErrorSource:
    """Interface consumed by the simulation engine (see module docstring)."""

    def fail_stop_arrival(self, W: float) -> float | None:
        """Arrival time of a fail-stop error within work ``W``.

        Returns ``None`` when no fail-stop error strikes during the segment,
        otherwise the elapsed work time ``t < W`` at which it strikes.
        """
        raise NotImplementedError

    def silent_strikes(self, W: float) -> bool:
        """Whether at least one silent error corrupts a segment of work ``W``."""
        raise NotImplementedError

    def partial_detects(self) -> bool:
        """Whether a partial verification detects present corruption."""
        raise NotImplementedError


class PoissonErrorSource(ErrorSource):
    """The paper's stochastic model, driven by a numpy ``Generator``.

    Fail-stop errors form a Poisson process with rate ``λ_f`` — the next
    arrival is exponential; silent errors strike a segment of work ``W``
    with probability ``1 - e^{-λ_s W}``; a partial verification detects
    present corruption with probability ``r`` (independently each time, as
    assumed by the analytic model).
    """

    def __init__(
        self, platform: Platform, rng: np.random.Generator | int | None = None
    ) -> None:
        self.platform = platform
        self.rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )

    def fail_stop_arrival(self, W: float) -> float | None:
        lf = self.platform.lf
        if lf <= 0.0:
            return None
        arrival = self.rng.exponential(1.0 / lf)
        return arrival if arrival < W else None

    def silent_strikes(self, W: float) -> bool:
        ls = self.platform.ls
        if ls <= 0.0:
            return False
        return bool(self.rng.random() < -math.expm1(-ls * W))

    def partial_detects(self) -> bool:
        return bool(self.rng.random() < self.platform.r)


class ScriptedErrorSource(ErrorSource):
    """Deterministic replay of scripted outcomes, for failure-injection tests.

    Parameters
    ----------
    fail_stops:
        Sequence of values consumed by :meth:`fail_stop_arrival`: ``None``
        (no error) or a fraction in ``[0, 1)`` interpreted relative to the
        segment length ``W`` (e.g. ``0.5`` strikes mid-segment).
    silents:
        Booleans consumed by :meth:`silent_strikes`.
    detections:
        Booleans consumed by :meth:`partial_detects`.
    exhausted_ok:
        When True (default), an exhausted script answers "no error" /
        "detected" instead of raising, letting tests script only a prefix.
    """

    def __init__(
        self,
        fail_stops: Iterable[float | None] = (),
        silents: Iterable[bool] = (),
        detections: Iterable[bool] = (),
        *,
        exhausted_ok: bool = True,
    ) -> None:
        self._fail_stops = deque(fail_stops)
        self._silents = deque(silents)
        self._detections = deque(detections)
        self._exhausted_ok = exhausted_ok

    def _next(self, queue: deque, default, what: str):
        if queue:
            return queue.popleft()
        if self._exhausted_ok:
            return default
        raise SimulationError(f"scripted error source exhausted its {what} script")

    def fail_stop_arrival(self, W: float) -> float | None:
        frac = self._next(self._fail_stops, None, "fail-stop")
        if frac is None:
            return None
        if not 0.0 <= frac < 1.0:
            raise SimulationError(
                f"scripted fail-stop fraction must be in [0, 1), got {frac!r}"
            )
        return frac * W

    def silent_strikes(self, W: float) -> bool:
        return bool(self._next(self._silents, False, "silent-error"))

    def partial_detects(self) -> bool:
        return bool(self._next(self._detections, True, "detection"))
