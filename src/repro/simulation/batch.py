"""Batched, vectorized Monte-Carlo replay of a compiled schedule.

:func:`simulate_batch` advances *all* ``N`` replications of a schedule
simultaneously.  Each replication holds four words of state — elapsed
time, a segment cursor into the :class:`~repro.simulation.compile.
CompiledSchedule` arrays, and a latent-corruption bit — plus integer
event counters.  One engine step performs one *segment attempt* for every
still-running replication with pure NumPy array operations:

1. draw a ``(3, N)`` block of uniforms (fail-stop, silent, detection
   slots — one row per random decision a segment attempt can need);
2. convert the fail-stop slot to an exponential arrival time by inverse
   transform and mask the replications whose arrival lands inside their
   current segment: those pay the elapsed work plus the disk recovery
   cost and their cursors jump back to the compiled ``fail_target``;
3. the survivors complete the segment; the silent slot corrupts them
   with the compiled per-segment probability, corruption ORs into the
   latent bitmask carried across unverified (partial-missed) stops;
4. at verifications, corrupted replications are caught (always, for
   guaranteed ones; with probability ``r`` via the detection slot for
   partial ones) and roll back to ``silent_target`` paying the memory
   recovery cost, or are missed and carry corruption latently;
5. clean replications pay their verification/checkpoint costs and their
   cursors advance.

The loop runs until every replication's cursor clears the last segment —
the number of iterations is the *maximum* attempt count over the batch
(close to the segment count unless error rates are extreme), so the
Python-level overhead is O(max attempts), not O(N × attempts) as in the
scalar engine.

Reproducibility
---------------
The uniform block in step 1 is always drawn full-size, including slots of
already-finished replications, so the stream consumed by replication
``i`` depends only on the chunk seed, the chunk population and ``i`` —
never on how fast *other* replications progress.  Replications are
processed in chunks of ``chunk_size`` (bounding memory and providing the
sharding grain for ``n_jobs``); chunk ``c`` draws from the ``c``-th child
of the batch ``SeedSequence``, so results are bit-identical for a given
``(seed, n_runs, chunk_size)`` regardless of ``n_jobs``.

:func:`replication_uniform_rows` regenerates the exact uniform rows
replication ``i`` consumes, and :class:`InverseTransformErrorSource`
feeds them to the trusted scalar engine with the same inverse-transform
conversions — the test suite replays every replication of a batch
through :func:`~repro.simulation.engine.simulate_run` this way and
asserts *bitwise* equal makespans and event counts.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError, SimulationError
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Schedule
from .breakdown import CATEGORY_INDEX, TIME_CATEGORIES, BatchBreakdown
from .compile import CompiledSchedule, compile_schedule
from .engine import DEFAULT_MAX_ATTEMPTS
from .errors import ErrorSource

__all__ = [
    "BatchResult",
    "simulate_batch",
    "run_compiled",
    "replication_uniform_rows",
    "InverseTransformErrorSource",
    "DEFAULT_CHUNK_SIZE",
]

#: Replications processed per chunk: bounds peak memory (a dozen
#: state/scratch arrays of this length) and is the sharding grain for
#: ``n_jobs``.  Part of the reproducibility contract — changing it
#: changes which chunk a replication lands in, hence its stream.
DEFAULT_CHUNK_SIZE = 16_384


@dataclass(frozen=True)
class BatchResult:
    """Per-replication outcome arrays of one batched campaign.

    The fields mirror :class:`~repro.simulation.engine.RunResult`, one
    array entry per replication.  ``time_categories`` is the vectorized
    per-category accounting: shape ``(len(TIME_CATEGORIES), n_runs)``, row
    order :data:`~repro.simulation.breakdown.TIME_CATEGORIES`; each column
    partitions that replication's makespan.
    """

    makespans: np.ndarray
    fail_stop_errors: np.ndarray
    silent_errors: np.ndarray
    silent_detected: np.ndarray
    silent_missed: np.ndarray
    attempts: np.ndarray
    time_categories: np.ndarray
    steps: int  #: lockstep iterations = max attempts over the batch

    @property
    def n_runs(self) -> int:
        return int(self.makespans.size)

    @property
    def breakdown(self) -> BatchBreakdown:
        """The per-category accounting wrapped with its accessors."""
        return BatchBreakdown(per_run=self.time_categories)

    @classmethod
    def concatenate(cls, parts: list["BatchResult"]) -> "BatchResult":
        """Stitch per-chunk results back into one batch, in chunk order."""
        return cls(
            makespans=np.concatenate([p.makespans for p in parts]),
            fail_stop_errors=np.concatenate([p.fail_stop_errors for p in parts]),
            silent_errors=np.concatenate([p.silent_errors for p in parts]),
            silent_detected=np.concatenate([p.silent_detected for p in parts]),
            silent_missed=np.concatenate([p.silent_missed for p in parts]),
            attempts=np.concatenate([p.attempts for p in parts]),
            time_categories=np.concatenate(
                [p.time_categories for p in parts], axis=1
            ),
            steps=max(p.steps for p in parts),
        )


def run_compiled(
    compiled: CompiledSchedule,
    n_runs: int,
    rng: np.random.Generator,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> BatchResult:
    """Advance ``n_runs`` replications of ``compiled`` to completion.

    This is the single-chunk kernel; :func:`simulate_batch` wraps it with
    seeding, chunking and process sharding.  Raises
    :class:`~repro.exceptions.SimulationError` if any replication exceeds
    ``max_attempts`` segment attempts.
    """
    S = compiled.n_segments
    lf = compiled.lf
    work = compiled.work
    p_silent = compiled.p_silent
    has_verif = compiled.has_verification
    is_partial = compiled.is_partial
    verif_cost = compiled.verification_cost
    cm_cost = compiled.memory_ckpt_cost
    cd_cost = compiled.disk_ckpt_cost
    fail_target = compiled.fail_target
    fail_cost = compiled.fail_recovery_cost
    silent_target = compiled.silent_target
    silent_cost = compiled.silent_recovery_cost
    recall = compiled.recall

    t = np.zeros(n_runs, dtype=np.float64)
    cursor = np.zeros(n_runs, dtype=np.int64)
    latent = np.zeros(n_runs, dtype=bool)
    n_fail = np.zeros(n_runs, dtype=np.int64)
    n_silent = np.zeros(n_runs, dtype=np.int64)
    n_detected = np.zeros(n_runs, dtype=np.int64)
    n_missed = np.zeros(n_runs, dtype=np.int64)
    n_attempts = np.zeros(n_runs, dtype=np.int64)
    # Per-category accounting: each row receives the same doubles, in the
    # same order, as the scalar engine's trace durations for that category
    # (bitwise cross-validated), and each column partitions t.
    cat = np.zeros((len(TIME_CATEGORIES), n_runs), dtype=np.float64)
    c_work = CATEGORY_INDEX["work"]
    c_lost = CATEGORY_INDEX["fail_stop_lost"]
    c_rd = CATEGORY_INDEX["disk_recovery"]
    c_rm = CATEGORY_INDEX["memory_recovery"]
    c_verif = CATEGORY_INDEX["verification"]
    c_cm = CATEGORY_INDEX["memory_checkpoint"]
    c_cd = CATEGORY_INDEX["disk_checkpoint"]

    steps = 0
    idx = np.arange(n_runs, dtype=np.int64)
    while idx.size:
        steps += 1
        if steps > max_attempts:
            raise SimulationError(
                f"batch exceeded {max_attempts} segment attempts with "
                f"{idx.size} replication(s) still running "
                "(error rates too high for this schedule?)"
            )
        # Full-size draw: finished replications keep consuming their slots
        # so each replication's stream is independent of the others' pace.
        u = rng.random((3, n_runs))
        jj = cursor[idx]
        W = work[jj]
        n_attempts[idx] += 1

        if lf > 0.0:
            arrival = -np.log1p(-u[0, idx]) / lf
            fail = arrival < W
        else:
            fail = np.zeros(idx.size, dtype=bool)

        ok = ~fail
        silent_new = ok & (u[1, idx] < p_silent[jj])
        corrupted = silent_new | (latent[idx] & ok)
        at_verif = has_verif[jj]
        partial = is_partial[jj]
        caught = corrupted & at_verif & (~partial | (u[2, idx] < recall))
        missed = (corrupted & at_verif) & ~caught
        proceed = ok & ~caught & ~missed

        # --- fail-stop: pay elapsed work + disk recovery, jump back ----
        fi = idx[fail]
        if fi.size:
            jf = jj[fail]
            lost = arrival[fail]
            rd = fail_cost[jf]
            t[fi] += lost
            t[fi] += rd
            cat[c_lost, fi] += lost
            cat[c_rd, fi] += rd
            cursor[fi] = fail_target[jf]
            latent[fi] = False
            n_fail[fi] += 1

        # --- segment completed: pay the work and any verification ------
        oi = idx[ok]
        if oi.size:
            jo = jj[ok]
            wo = W[ok]
            vo = verif_cost[jo]  # zero where unverified
            t[oi] += wo
            t[oi] += vo
            cat[c_work, oi] += wo
            cat[c_verif, oi] += vo
            n_silent[idx[silent_new]] += 1

        # --- corruption caught: memory recovery, jump back --------------
        ci = idx[caught]
        if ci.size:
            jc = jj[caught]
            rm = silent_cost[jc]
            t[ci] += rm
            cat[c_rm, ci] += rm
            cursor[ci] = silent_target[jc]
            latent[ci] = False
            n_detected[ci] += 1

        # --- corruption missed: carry it latently, advance ---------------
        mi = idx[missed]
        if mi.size:
            latent[mi] = True
            cursor[mi] += 1
            n_missed[mi] += 1

        # --- clean: pay checkpoints, advance -----------------------------
        pi = idx[proceed]
        if pi.size:
            jp = jj[proceed]
            cm = cm_cost[jp]  # zero where no checkpoint
            cd = cd_cost[jp]
            t[pi] += cm
            t[pi] += cd
            cat[c_cm, pi] += cm
            cat[c_cd, pi] += cd
            latent[pi] = False
            cursor[pi] += 1

        idx = np.flatnonzero(cursor < S)

    return BatchResult(
        makespans=t,
        fail_stop_errors=n_fail,
        silent_errors=n_silent,
        silent_detected=n_detected,
        silent_missed=n_missed,
        attempts=n_attempts,
        time_categories=cat,
        steps=steps,
    )


def _chunk_sizes(n_runs: int, chunk_size: int) -> list[int]:
    sizes = [chunk_size] * (n_runs // chunk_size)
    if n_runs % chunk_size:
        sizes.append(n_runs % chunk_size)
    return sizes


def _run_chunk(
    compiled: CompiledSchedule,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
) -> BatchResult:
    """Worker entry point (module-level so it pickles for ``n_jobs``)."""
    return run_compiled(
        compiled, n, np.random.default_rng(child), max_attempts
    )


def simulate_batch(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    n_runs: int,
    *,
    seed: int | np.random.SeedSequence | None = 0,
    costs: CostProfile | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> BatchResult:
    """Simulate ``n_runs`` executions of ``schedule`` in vectorized batches.

    Parameters
    ----------
    seed:
        Seed (or ``SeedSequence``) for the batch; each chunk of
        ``chunk_size`` replications draws from an independent child
        stream.  Results are bit-identical for a given ``(seed, n_runs,
        chunk_size)`` whatever ``n_jobs`` is.
    chunk_size:
        Replications advanced per lockstep kernel call — bounds memory
        and sets the process-sharding grain.
    n_jobs:
        When > 1, chunks are dispatched to that many worker processes;
        ``None`` or 1 runs them serially in-process.
    max_attempts:
        Per-replication cap on segment attempts, as in the scalar engine.
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    compiled = compile_schedule(chain, platform, schedule, costs)
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = _chunk_sizes(n_runs, chunk_size)
    children = seed_seq.spawn(len(sizes))

    if n_jobs is not None and n_jobs > 1 and len(sizes) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(n_jobs, len(sizes))) as pool:
            parts = list(
                pool.map(
                    _run_chunk,
                    [compiled] * len(sizes),
                    children,
                    sizes,
                    [max_attempts] * len(sizes),
                )
            )
    else:
        parts = [
            _run_chunk(compiled, child, n, max_attempts)
            for child, n in zip(children, sizes)
        ]
    if len(parts) == 1:
        return parts[0]
    return BatchResult.concatenate(parts)


# ----------------------------------------------------------------------
# scalar replay of the batched streams (cross-validation support)
# ----------------------------------------------------------------------
def replication_uniform_rows(
    seed: int | np.random.SeedSequence | None,
    n_runs: int,
    rep_index: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[np.ndarray]:
    """Yield the ``(3,)`` uniform rows replication ``rep_index`` of a
    :func:`simulate_batch` campaign consumes, one row per segment attempt.

    Regenerates the batch's chunk streams (same seeding discipline as
    :func:`simulate_batch`) and slices out one replication's column —
    O(chunk population) per attempt, strictly a test/verification tool.
    """
    if not 0 <= rep_index < n_runs:
        raise InvalidParameterError(
            f"rep_index must be in [0, {n_runs}), got {rep_index}"
        )
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = _chunk_sizes(n_runs, chunk_size)
    chunk = rep_index // chunk_size
    offset = rep_index % chunk_size
    rng = np.random.default_rng(seed_seq.spawn(len(sizes))[chunk])
    chunk_n = sizes[chunk]

    def _rows() -> Iterator[np.ndarray]:
        while True:
            yield rng.random((3, chunk_n))[:, offset]

    return _rows()


class InverseTransformErrorSource(ErrorSource):
    """Scalar :class:`~repro.simulation.errors.ErrorSource` drawing by the
    batched engine's exact discipline.

    Consumes one ``(3,)`` uniform row per segment attempt (fail-stop,
    silent, detection slots) and applies the same inverse-transform
    conversions — via the *numpy* transcendentals, which are bitwise
    identical to the vectorized kernels — so feeding it the rows from
    :func:`replication_uniform_rows` makes the trusted scalar engine
    replay one batch replication exactly, down to the last float.
    """

    def __init__(self, platform: Platform, rows: Iterator[np.ndarray]) -> None:
        self.platform = platform
        self._rows = iter(rows)
        self._row: np.ndarray | None = None

    def fail_stop_arrival(self, W: float) -> float | None:
        # The engine opens every attempt with this call: advance the row.
        self._row = next(self._rows)
        lf = self.platform.lf
        if lf <= 0.0:
            return None
        arrival = float(-np.log1p(-self._row[0]) / lf)
        return arrival if arrival < W else None

    def silent_strikes(self, W: float) -> bool:
        ls = self.platform.ls
        if ls <= 0.0:
            return False
        return bool(self._row[1] < -np.expm1(-ls * W))

    def partial_detects(self) -> bool:
        return bool(self._row[2] < self.platform.r)
