"""Batched, vectorized Monte-Carlo replay of a compiled schedule.

:func:`simulate_batch` advances *all* ``N`` replications of a schedule
simultaneously.  Each replication holds four words of state — elapsed
time, a segment cursor into the :class:`~repro.simulation.compile.
CompiledSchedule` arrays, and a latent-corruption bit — plus integer
event counters.  One engine step performs one *segment attempt* for every
still-running replication with pure array-API operations — the kernel is
backend-agnostic (:mod:`repro.simulation.backend`): NumPy by default,
``array-api-strict`` in CI, CuPy/torch namespaces as drop-ins:

1. draw a ``(3, N)`` block of uniforms (fail-stop, silent, detection
   slots — one row per random decision a segment attempt can need);
2. convert the fail-stop slot to an exponential arrival time by inverse
   transform and mask the replications whose arrival lands inside their
   current segment: those pay the elapsed work plus the disk recovery
   cost and their cursors jump back to the compiled ``fail_target``;
3. the survivors complete the segment; the silent slot corrupts them
   with the compiled per-segment probability, corruption ORs into the
   latent bitmask carried across unverified (partial-missed) stops;
4. at verifications, corrupted replications are caught (always, for
   guaranteed ones; with probability ``r`` via the detection slot for
   partial ones) and roll back to ``silent_target`` paying the memory
   recovery cost, or are missed and carry corruption latently;
5. clean replications pay their verification/checkpoint costs and their
   cursors advance.

The loop runs until every replication's cursor clears the last segment —
the number of iterations is the *maximum* attempt count over the batch
(close to the segment count unless error rates are extreme), so the
Python-level overhead is O(max attempts), not O(N × attempts) as in the
scalar engine.

Reproducibility
---------------
The uniform block in step 1 is always drawn full-size, including slots of
already-finished replications, so the stream consumed by replication
``i`` depends only on the chunk seed, the chunk population and ``i`` —
never on how fast *other* replications progress.  Replications are
processed in chunks of ``chunk_size`` (bounding memory and providing the
sharding grain for ``n_jobs``); chunk ``c`` draws from the ``c``-th child
of the batch ``SeedSequence``, so results are bit-identical for a given
``(seed, n_runs, chunk_size)`` regardless of ``n_jobs``.

:func:`replication_uniform_rows` regenerates the exact uniform rows
replication ``i`` consumes, and :class:`InverseTransformErrorSource`
feeds them to the trusted scalar engine with the same inverse-transform
conversions — the test suite replays every replication of a batch
through :func:`~repro.simulation.engine.simulate_run` this way and
asserts *bitwise* equal makespans and event counts.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError, ReproError, SimulationError
from ..obs import events as _events, metrics as _metrics, span as _span
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Schedule
from .backend import Backend, get_backend
from .breakdown import CATEGORY_INDEX, TIME_CATEGORIES, BatchBreakdown
from .compile import CompiledSchedule, compile_schedule
from .engine import DEFAULT_MAX_ATTEMPTS
from .errors import ErrorSource

__all__ = [
    "BatchResult",
    "simulate_batch",
    "run_compiled",
    "replication_uniform_rows",
    "InverseTransformErrorSource",
    "DEFAULT_CHUNK_SIZE",
]

#: Replications processed per chunk: bounds peak memory (a dozen
#: state/scratch arrays of this length) and is the sharding grain for
#: ``n_jobs``.  Part of the reproducibility contract — changing it
#: changes which chunk a replication lands in, hence its stream.
DEFAULT_CHUNK_SIZE = 16_384


@dataclass(frozen=True)
class BatchResult:  # repro: allow[RPR005] -- array carrier folded into MC stats
    """Per-replication outcome arrays of one batched campaign.

    The fields mirror :class:`~repro.simulation.engine.RunResult`, one
    array entry per replication.  ``time_categories`` is the vectorized
    per-category accounting: shape ``(len(TIME_CATEGORIES), n_runs)``, row
    order :data:`~repro.simulation.breakdown.TIME_CATEGORIES`; each column
    partitions that replication's makespan.
    """

    makespans: np.ndarray
    fail_stop_errors: np.ndarray
    silent_errors: np.ndarray
    silent_detected: np.ndarray
    silent_missed: np.ndarray
    attempts: np.ndarray
    time_categories: np.ndarray
    steps: int  #: lockstep iterations = max attempts over the batch
    #: Per-threshold first-crossing times, shape ``(len(commit_stops),
    #: n_runs)`` — the wall-clock instant each replication first cleared
    #: the corresponding segment cursor passed as ``commit_stops`` (None
    #: unless :func:`run_compiled` was asked to record them).  Row ``c``
    #: is bitwise-equal to the scalar engine's ``DISK_CHECKPOINT`` event
    #: time at the matching position, which is what the multi-worker
    #: composition in :mod:`repro.simulation.parallel` consumes.
    commit_times: np.ndarray | None = None

    @property
    def n_runs(self) -> int:
        return int(self.makespans.size)

    @property
    def breakdown(self) -> BatchBreakdown:
        """The per-category accounting wrapped with its accessors."""
        return BatchBreakdown(per_run=self.time_categories)

    @classmethod
    def concatenate(cls, parts: list["BatchResult"]) -> "BatchResult":
        """Stitch per-chunk results back into one batch, in chunk order."""
        commits = [p.commit_times for p in parts]
        if any(c is None for c in commits):
            commit_times = None
        else:
            commit_times = np.concatenate(commits, axis=1)
        return cls(
            commit_times=commit_times,
            makespans=np.concatenate([p.makespans for p in parts]),
            fail_stop_errors=np.concatenate([p.fail_stop_errors for p in parts]),
            silent_errors=np.concatenate([p.silent_errors for p in parts]),
            silent_detected=np.concatenate([p.silent_detected for p in parts]),
            silent_missed=np.concatenate([p.silent_missed for p in parts]),
            attempts=np.concatenate([p.attempts for p in parts]),
            time_categories=np.concatenate(
                [p.time_categories for p in parts], axis=1
            ),
            steps=max(p.steps for p in parts),
        )


def run_compiled(
    compiled: CompiledSchedule,
    n_runs: int,
    rng: np.random.Generator,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backend: "str | Backend | None" = None,
    *,
    commit_stops: "list[int] | tuple[int, ...] | np.ndarray | None" = None,
) -> BatchResult:
    """Advance ``n_runs`` replications of ``compiled`` to completion.

    This is the single-chunk kernel; :func:`simulate_batch` wraps it with
    seeding, chunking and process sharding.  Raises
    :class:`~repro.exceptions.SimulationError` if any replication exceeds
    ``max_attempts`` segment attempts.

    ``commit_stops`` optionally asks the kernel to record, per
    replication, the wall-clock time at which its cursor *first* reached
    each of the given segment indices (strictly increasing, in ``[1,
    n_segments]``).  The times land in :attr:`BatchResult.commit_times`.
    Recording is only sound when no rollback can cross back over a
    recorded stop — i.e. every segment at or beyond a stop has its
    ``fail_target`` and ``silent_target`` at or beyond that stop, which
    holds exactly when each stop is a disk-checkpointed position (the
    multi-worker commit boundaries of :mod:`repro.simulation.parallel`);
    the kernel validates this and raises
    :class:`~repro.exceptions.SimulationError` otherwise.

    The kernel body is pure array-API (``backend`` selects the namespace,
    defaulting to ``REPRO_BACKEND`` / NumPy): per-segment constants are
    gathered with ``xp.take``, branch outcomes are combined with boolean
    masks and ``xp.where`` (no NumPy-only integer fancy indexing), and the
    still-running replications are kept *compacted* — finished ones are
    retired to host NumPy result buffers through boolean-mask selection,
    so late lockstep iterations touch only the stragglers, whatever the
    backend.  Uniform draws always come from the host NumPy ``rng`` (full
    ``(3, n_runs)`` blocks per step, see module doc), which keeps streams
    identical across backends.
    """
    reg = _metrics()
    bus = _events()
    t0 = perf_counter() if (reg.enabled or bus.enabled) else 0.0
    n_compactions = 0
    be = get_backend(backend)
    xp = be.xp
    f8, i8, b1 = xp.float64, xp.int64, xp.bool
    S = compiled.n_segments
    lf = compiled.lf
    recall = compiled.recall
    # Segment constants onto the execution backend, once per kernel call
    # (no copy when the compiled arrays already live there, e.g. NumPy).
    work = be.asarray(compiled.work, dtype=f8)
    p_silent = be.asarray(compiled.p_silent, dtype=f8)
    has_verif = be.asarray(compiled.has_verification, dtype=b1)
    is_partial = be.asarray(compiled.is_partial, dtype=b1)
    verif_cost = be.asarray(compiled.verification_cost, dtype=f8)
    cm_cost = be.asarray(compiled.memory_ckpt_cost, dtype=f8)
    cd_cost = be.asarray(compiled.disk_ckpt_cost, dtype=f8)
    fail_target = be.asarray(compiled.fail_target, dtype=i8)
    fail_cost = be.asarray(compiled.fail_recovery_cost, dtype=f8)
    silent_target = be.asarray(compiled.silent_target, dtype=i8)
    silent_cost = be.asarray(compiled.silent_recovery_cost, dtype=f8)

    commit_list: list[int] = (
        [] if commit_stops is None else [int(c) for c in commit_stops]
    )
    if commit_list:
        if commit_list != sorted(set(commit_list)) or not (
            1 <= commit_list[0] and commit_list[-1] <= S
        ):
            raise SimulationError(
                "commit_stops must be strictly increasing segment indices "
                f"in [1, {S}], got {commit_list}"
            )
        ft_np = be.to_numpy(fail_target)
        st_np = be.to_numpy(silent_target)
        for thr in commit_list:
            if (ft_np[thr:] < thr).any() or (st_np[thr:] < thr).any():
                raise SimulationError(
                    f"commit stop at segment {thr} is not rollback-safe: a "
                    "later segment can roll back across it (commit stops "
                    "must be disk-checkpointed positions)"
                )

    c_work = CATEGORY_INDEX["work"]
    c_lost = CATEGORY_INDEX["fail_stop_lost"]
    c_rd = CATEGORY_INDEX["disk_recovery"]
    c_rm = CATEGORY_INDEX["memory_recovery"]
    c_verif = CATEGORY_INDEX["verification"]
    c_cm = CATEGORY_INDEX["memory_checkpoint"]
    c_cd = CATEGORY_INDEX["disk_checkpoint"]

    # Host (NumPy) result buffers, scatter-filled as replications retire.
    out_t = np.zeros(n_runs, dtype=np.float64)
    out_fail = np.zeros(n_runs, dtype=np.int64)
    out_silent = np.zeros(n_runs, dtype=np.int64)
    out_detected = np.zeros(n_runs, dtype=np.int64)
    out_missed = np.zeros(n_runs, dtype=np.int64)
    out_attempts = np.zeros(n_runs, dtype=np.int64)
    # Per-category accounting: each row receives the same doubles, in the
    # same order, as the scalar engine's trace durations for that category
    # (bitwise cross-validated), and each column partitions the makespan.
    out_cat = np.zeros((len(TIME_CATEGORIES), n_runs), dtype=np.float64)
    out_commit = np.zeros((len(commit_list), n_runs), dtype=np.float64)

    # Live (still-running) state, compacted; ``orig`` maps live position
    # -> original replication index and drives both the host-side stream
    # gather and the result scatter.
    orig = np.arange(n_runs, dtype=np.int64)
    t = be.zeros(n_runs, dtype=f8)
    cursor = be.zeros(n_runs, dtype=i8)
    latent = be.zeros(n_runs, dtype=b1)
    n_fail = be.zeros(n_runs, dtype=i8)
    n_silent = be.zeros(n_runs, dtype=i8)
    n_detected = be.zeros(n_runs, dtype=i8)
    n_missed = be.zeros(n_runs, dtype=i8)
    n_attempts = be.zeros(n_runs, dtype=i8)
    cat = [be.zeros(n_runs, dtype=f8) for _ in TIME_CATEGORIES]
    commit_t = [be.zeros(n_runs, dtype=f8) for _ in commit_list]
    committed = [be.zeros(n_runs, dtype=b1) for _ in commit_list]

    steps = 0
    while orig.size:
        steps += 1
        if steps > max_attempts:
            raise SimulationError(
                f"batch exceeded {max_attempts} segment attempts with "
                f"{orig.size} replication(s) still running "
                "(error rates too high for this schedule?)"
            )
        # Full-size draw: finished replications keep consuming their slots
        # so each replication's stream is independent of the others' pace.
        u = rng.random((3, n_runs))
        u_live = u if orig.size == n_runs else u[:, orig]
        u0 = be.asarray(u_live[0], dtype=f8)
        u1 = be.asarray(u_live[1], dtype=f8)
        u2 = be.asarray(u_live[2], dtype=f8)
        jj = cursor  # every live replication satisfies cursor < S
        W = xp.take(work, jj)
        n_attempts = n_attempts + 1
        zero = be.zeros(orig.size, dtype=f8)

        if lf > 0.0:
            arrival = -xp.log1p(-u0) / lf
            fail = arrival < W
        else:
            arrival = zero
            fail = be.zeros(orig.size, dtype=b1)

        ok = ~fail
        silent_new = ok & (u1 < xp.take(p_silent, jj))
        corrupted = silent_new | (latent & ok)
        at_verif = xp.take(has_verif, jj)
        partial = xp.take(is_partial, jj)
        caught = corrupted & at_verif & (~partial | (u2 < recall))
        missed = (corrupted & at_verif) & ~caught
        proceed = ok & ~caught & ~missed
        # fail/caught/missed/proceed partition the live set, so the masked
        # additions below touch each replication exactly once per branch
        # (adding a masked-out 0.0 elsewhere is bitwise identity).

        # --- fail-stop: pay elapsed work + disk recovery, jump back ----
        if lf > 0.0:
            lost = xp.where(fail, arrival, zero)
            rd = xp.where(fail, xp.take(fail_cost, jj), zero)
            t = t + lost
            t = t + rd
            cat[c_lost] = cat[c_lost] + lost
            cat[c_rd] = cat[c_rd] + rd
            n_fail = n_fail + xp.astype(fail, i8)

        # --- segment completed: pay the work and any verification ------
        wo = xp.where(ok, W, zero)
        vo = xp.where(ok, xp.take(verif_cost, jj), zero)  # 0 if unverified
        t = t + wo
        t = t + vo
        cat[c_work] = cat[c_work] + wo
        cat[c_verif] = cat[c_verif] + vo
        n_silent = n_silent + xp.astype(silent_new, i8)

        # --- corruption caught: memory recovery, jump back --------------
        rm = xp.where(caught, xp.take(silent_cost, jj), zero)
        t = t + rm
        cat[c_rm] = cat[c_rm] + rm
        n_detected = n_detected + xp.astype(caught, i8)

        # --- corruption missed: carry it latently, advance ---------------
        n_missed = n_missed + xp.astype(missed, i8)

        # --- clean: pay checkpoints, advance -----------------------------
        cm = xp.where(proceed, xp.take(cm_cost, jj), zero)  # 0 if no ckpt
        cd = xp.where(proceed, xp.take(cd_cost, jj), zero)
        t = t + cm
        t = t + cd
        cat[c_cm] = cat[c_cm] + cm
        cat[c_cd] = cat[c_cd] + cd

        cursor = xp.where(
            fail,
            xp.take(fail_target, jj),
            xp.where(caught, xp.take(silent_target, jj), cursor + 1),
        )
        latent = missed  # every other branch clears the latent bit

        # --- commit stops: stamp first crossings (rollback-safe by the
        # validation above, so a stamped time is final) -------------------
        for c, thr in enumerate(commit_list):
            newly = (cursor >= thr) & ~committed[c]
            commit_t[c] = xp.where(newly, t, commit_t[c])
            committed[c] = committed[c] | newly

        # --- retire finished replications, compact the live set ----------
        cursor_np = be.to_numpy(cursor)
        done_np = cursor_np >= S
        if done_np.any():
            n_compactions += 1
            ids = orig[done_np]
            done = be.asarray(done_np, dtype=b1)
            out_t[ids] = be.to_numpy(t[done])
            out_fail[ids] = be.to_numpy(n_fail[done])
            out_silent[ids] = be.to_numpy(n_silent[done])
            out_detected[ids] = be.to_numpy(n_detected[done])
            out_missed[ids] = be.to_numpy(n_missed[done])
            out_attempts[ids] = be.to_numpy(n_attempts[done])
            for k, row in enumerate(cat):
                out_cat[k, ids] = be.to_numpy(row[done])
            for c, row in enumerate(commit_t):
                out_commit[c, ids] = be.to_numpy(row[done])
            orig = orig[~done_np]
            keep = be.asarray(~done_np, dtype=b1)
            t = t[keep]
            cursor = cursor[keep]
            latent = latent[keep]
            n_fail = n_fail[keep]
            n_silent = n_silent[keep]
            n_detected = n_detected[keep]
            n_missed = n_missed[keep]
            n_attempts = n_attempts[keep]
            cat = [row[keep] for row in cat]
            commit_t = [row[keep] for row in commit_t]
            committed = [row[keep] for row in committed]

    if reg.enabled:
        reg.counter("sim.batch.chunks").inc()
        reg.counter("sim.batch.replications").inc(n_runs)
        reg.counter("sim.batch.steps").inc(steps)
        reg.counter("sim.batch.compactions").inc(n_compactions)
        reg.timer("sim.batch.kernel").observe(perf_counter() - t0)
    if bus.enabled:
        bus.emit(
            "sim.chunk",
            reps=n_runs,
            steps=steps,
            compactions=n_compactions,
            wall_s=perf_counter() - t0,
        )
    return BatchResult(
        makespans=out_t,
        fail_stop_errors=out_fail,
        silent_errors=out_silent,
        silent_detected=out_detected,
        silent_missed=out_missed,
        attempts=out_attempts,
        time_categories=out_cat,
        steps=steps,
        commit_times=out_commit if commit_list else None,
    )


def _chunk_sizes(n_runs: int, chunk_size: int) -> list[int]:
    sizes = [chunk_size] * (n_runs // chunk_size)
    if n_runs % chunk_size:
        sizes.append(n_runs % chunk_size)
    return sizes


def _require_shardable(be: Backend) -> None:
    """Reject ``n_jobs`` sharding for backends workers cannot re-resolve.

    Array namespaces (module objects) are not picklable, so worker
    processes receive only the backend *name* and re-resolve it from the
    registry.  A live :class:`Backend` handle whose name was never
    registered — or a loader that only exists in this process under the
    ``spawn`` start method — would surface as a confusing worker-side
    failure; catch it up front with an actionable message.
    """
    try:
        resolved = get_backend(be.name)
    except ReproError as exc:
        raise InvalidParameterError(
            f"n_jobs sharding re-resolves the backend by name, but "
            f"{be.name!r} is not resolvable from the registry ({exc}); "
            "register it with register_backend(...) or run with n_jobs=None"
        ) from exc
    if resolved.xp is not be.xp or resolved.device != be.device:
        raise InvalidParameterError(
            f"n_jobs sharding would silently replace the customized "
            f"backend handle {be.name!r} (device={be.device!r}) with the "
            f"registry's default (device={resolved.device!r}); register a "
            "loader reproducing the handle or run with n_jobs=None"
        )


def _run_chunk(
    compiled: CompiledSchedule,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
    backend: "str | Backend | None" = None,
) -> BatchResult:
    """Worker entry point (module-level so it pickles for ``n_jobs``)."""
    return run_compiled(
        compiled, n, np.random.default_rng(child), max_attempts, backend
    )


def _run_chunk_observed(
    compiled: CompiledSchedule,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
    backend: "str | Backend | None" = None,
):
    """Worker entry point that ships its kernel metrics and events home.

    Worker processes inherit no ambient instrumentation, so the kernel
    runs under a private registry and event bus whose snapshots ride back
    with the result for the parent to merge/replay.
    """
    from ..obs import EventBus, MetricsRegistry, instrument

    reg = MetricsRegistry()
    bus = EventBus()
    with instrument(reg, events=bus):
        part = run_compiled(
            compiled, n, np.random.default_rng(child), max_attempts, backend
        )
    return part, reg.snapshot(), bus.snapshot()


def simulate_batch(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    n_runs: int,
    *,
    seed: int | np.random.SeedSequence | None = 0,
    costs: CostProfile | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backend: "str | Backend | None" = None,
) -> BatchResult:
    """Simulate ``n_runs`` executions of ``schedule`` in vectorized batches.

    Parameters
    ----------
    seed:
        Seed (or ``SeedSequence``) for the batch; each chunk of
        ``chunk_size`` replications draws from an independent child
        stream.  Results are bit-identical for a given ``(seed, n_runs,
        chunk_size)`` whatever ``n_jobs`` is.
    chunk_size:
        Replications advanced per lockstep kernel call — bounds memory
        and sets the process-sharding grain.
    n_jobs:
        When > 1, chunks are dispatched to that many worker processes;
        ``None`` or 1 runs them serially in-process.
    max_attempts:
        Per-replication cap on segment attempts, as in the scalar engine.
    backend:
        Array-API backend the lockstep kernel runs on: a registered name
        (``"numpy"``, ``"array-api-strict"``, ``"cupy"``, ``"torch"``), a
        :class:`~repro.simulation.backend.Backend` handle, or ``None``
        for the ``REPRO_BACKEND`` / NumPy default.  Uniform streams stay
        on the host, so the sampled campaign is the same one on every
        backend; results always come back as NumPy arrays.
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    be = get_backend(backend)  # resolve (and fail) before any work
    compiled = compile_schedule(chain, platform, schedule, costs)
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = _chunk_sizes(n_runs, chunk_size)
    children = seed_seq.spawn(len(sizes))

    reg = _metrics()
    bus = _events()
    observing = reg.enabled or bus.enabled
    with _span(
        "sim.batch",
        n_runs=n_runs,
        chunks=len(sizes),
        n_jobs=n_jobs or 1,
        backend=be.name,
    ):
        if n_jobs is not None and n_jobs > 1 and len(sizes) > 1:
            _require_shardable(be)
            from concurrent.futures import ProcessPoolExecutor

            entry = _run_chunk_observed if observing else _run_chunk
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(sizes))
            ) as pool:
                parts = list(
                    pool.map(
                        entry,
                        [compiled] * len(sizes),
                        children,
                        sizes,
                        [max_attempts] * len(sizes),
                        [be.name] * len(sizes),  # workers re-resolve by name
                    )
                )
            if observing:
                # Fold the worker-side kernel snapshots into this run's
                # registry and replay shipped events in shard order; the
                # result parts stay exactly as before.
                for _, snap, esnap in parts:
                    reg.merge_snapshot(snap)
                    bus.replay(esnap)
                parts = [part for part, _, _ in parts]
        else:
            parts = [
                _run_chunk(compiled, child, n, max_attempts, be)
                for child, n in zip(children, sizes)
            ]
    if len(parts) == 1:
        return parts[0]
    return BatchResult.concatenate(parts)


# ----------------------------------------------------------------------
# scalar replay of the batched streams (cross-validation support)
# ----------------------------------------------------------------------
def replication_uniform_rows(
    seed: int | np.random.SeedSequence | None,
    n_runs: int,
    rep_index: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[np.ndarray]:
    """Yield the ``(3,)`` uniform rows replication ``rep_index`` of a
    :func:`simulate_batch` campaign consumes, one row per segment attempt.

    Regenerates the batch's chunk streams (same seeding discipline as
    :func:`simulate_batch`) and slices out one replication's column —
    O(chunk population) per attempt, strictly a test/verification tool.
    """
    if not 0 <= rep_index < n_runs:
        raise InvalidParameterError(
            f"rep_index must be in [0, {n_runs}), got {rep_index}"
        )
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = _chunk_sizes(n_runs, chunk_size)
    chunk = rep_index // chunk_size
    offset = rep_index % chunk_size
    rng = np.random.default_rng(seed_seq.spawn(len(sizes))[chunk])
    chunk_n = sizes[chunk]

    def _rows() -> Iterator[np.ndarray]:
        while True:
            yield rng.random((3, chunk_n))[:, offset]

    return _rows()


class InverseTransformErrorSource(ErrorSource):
    """Scalar :class:`~repro.simulation.errors.ErrorSource` drawing by the
    batched engine's exact discipline.

    Consumes one ``(3,)`` uniform row per segment attempt (fail-stop,
    silent, detection slots) and applies the same inverse-transform
    conversions — via the *numpy* transcendentals, which are bitwise
    identical to the vectorized kernels — so feeding it the rows from
    :func:`replication_uniform_rows` makes the trusted scalar engine
    replay one batch replication exactly, down to the last float.
    """

    def __init__(self, platform: Platform, rows: Iterator[np.ndarray]) -> None:
        self.platform = platform
        self._rows = iter(rows)
        self._row: np.ndarray | None = None

    def fail_stop_arrival(self, W: float) -> float | None:
        # The engine opens every attempt with this call: advance the row.
        self._row = next(self._rows)
        lf = self.platform.lf
        if lf <= 0.0:
            return None
        arrival = float(-np.log1p(-self._row[0]) / lf)
        return arrival if arrival < W else None

    def silent_strikes(self, W: float) -> bool:
        ls = self.platform.ls
        if ls <= 0.0:
            return False
        return bool(self._row[1] < -np.expm1(-ls * W))

    def partial_detects(self) -> bool:
        return bool(self._row[2] < self.platform.r)
