"""Multi-worker failure simulation: p processors under a commit protocol.

A :class:`ParallelPlan` describes one p-processor execution of a workflow:
each worker runs its own task chain under its own two-level checkpointing
schedule, and cross-worker data dependencies are exchanged through *commit
boundaries* — disk-checkpointed positions of the producing worker's chain.
The protocol (built by :mod:`repro.dag.parallel`) forces a disk checkpoint
after every task whose output another worker consumes, and right before
every task that consumes remote data, which divides each worker's chain
into *epochs*:

* within an epoch the worker runs the ordinary two-level protocol of the
  scalar/batched engines — fail-stop rollbacks to the last disk
  checkpoint, silent-error rollbacks to the last memory checkpoint;
* a rollback never crosses a commit boundary: the boundary stores a disk
  checkpoint, and disk checkpoints are only stored after a *clean*
  guaranteed verification, so committed data is final and correct;
* an epoch whose first task consumes remote data stalls until every
  producing worker's epoch has committed — so a worker hit by failures
  transparently stalls its consumers, while waiting itself is failure-free
  (no work is executing).

Because waiting is failure-free and rollbacks never cross boundaries, each
worker's *busy trajectory* (the sequence of attempts, errors and commit
instants on its own clock) is completely independent of the other workers.
That is what makes the oracle-grade decomposition possible:

1. every worker is simulated with the existing single-chain kernels
   (:func:`~repro.simulation.batch.run_compiled` batched, or the trusted
   scalar :func:`~repro.simulation.engine.simulate_run`), on its *own*
   host-drawn uniform stream (see :func:`worker_uniform_rows`);
2. the wall-clock composition — epoch start = max(own previous epoch end,
   producers' commit instants); epoch end = start + busy epoch duration —
   is a deterministic fold over the acyclic epoch graph.

:func:`simulate_parallel` runs step 1 with the batched kernel (the kernel
stamps each replication's boundary-crossing times via ``commit_stops``)
and step 2 vectorized over replications; :func:`simulate_parallel_run`
is the scalar oracle, doing both steps with the scalar engine and the
same float operations — the test suite replays batched campaigns
worker-by-worker against it and asserts *bitwise* equality.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError, InvalidScheduleError, SimulationError
from ..chains import TaskChain
from ..obs import events as _events, metrics as _metrics, span as _span
from ..platforms import Platform
from ..core.costs import CostProfile
from ..core.schedule import Action, Schedule
from .backend import Backend, get_backend
from .batch import (
    DEFAULT_CHUNK_SIZE,
    BatchResult,
    _chunk_sizes,
    _require_shardable,
    run_compiled,
)
from .compile import CompiledSchedule, compile_schedule
from .engine import DEFAULT_MAX_ATTEMPTS, RunResult, simulate_run
from .errors import ErrorSource
from .trace import EventKind

__all__ = [
    "WorkerPlan",
    "ParallelPlan",
    "ParallelRunResult",
    "ParallelBatchResult",
    "simulate_parallel_run",
    "simulate_parallel",
    "worker_uniform_rows",
]


@dataclass(frozen=True)
class WorkerPlan:
    """One worker's share of a :class:`ParallelPlan`.

    Attributes
    ----------
    chain:
        The worker's tasks, in execution order, as a linear chain.
    schedule:
        Two-level checkpointing schedule over that chain.  Every interior
        commit boundary must carry :data:`~repro.core.schedule.Action.DISK`.
    boundaries:
        Strictly increasing interior positions (``1 <= b < chain.n``) at
        which the worker commits data for other workers (or waits for
        remote data committed by them).  The chain end is always an
        implicit final boundary, so a worker with ``k`` interior
        boundaries runs ``k + 1`` epochs.
    costs:
        Optional heterogeneous per-task cost profile (None = uniform
        platform costs), as in the single-chain engines.
    """

    chain: TaskChain
    schedule: Schedule
    boundaries: tuple[int, ...] = ()
    costs: CostProfile | None = None

    @property
    def n_epochs(self) -> int:
        return len(self.boundaries) + 1

    def validate(self) -> None:
        if self.schedule.n != self.chain.n:
            raise InvalidScheduleError(
                f"worker schedule covers {self.schedule.n} tasks but its "
                f"chain has {self.chain.n}"
            )
        prev = 0
        for b in self.boundaries:
            if not prev < b < self.chain.n:
                raise InvalidScheduleError(
                    f"commit boundaries must be strictly increasing interior "
                    f"positions, got {self.boundaries} on a "
                    f"{self.chain.n}-task chain"
                )
            if self.schedule.action(b) != Action.DISK:
                raise InvalidScheduleError(
                    f"commit boundary T{b} must store a disk checkpoint "
                    f"(got {self.schedule.action(b).name})"
                )
            prev = b


#: A dependency endpoint: (producer worker index, producer epoch index).
EpochRef = tuple[int, int]


@dataclass(frozen=True)
class ParallelPlan:
    """A complete p-worker execution plan (see module docstring).

    Attributes
    ----------
    workers:
        One :class:`WorkerPlan` per processor; ``None`` marks an idle
        processor (kept so worker indices — and their random streams —
        are stable whatever the assignment).
    deps:
        ``deps[w][e]`` lists the epochs whose commits epoch ``e`` of
        worker ``w`` must wait for, as ``(worker, epoch)`` pairs in the
        (deterministic) order the wall-clock composition folds them.
        Idle workers contribute an empty tuple.
    """

    workers: tuple[WorkerPlan | None, ...]
    deps: tuple[tuple[tuple[EpochRef, ...], ...], ...]

    def __post_init__(self) -> None:
        if not any(w is not None for w in self.workers):
            raise InvalidScheduleError("a parallel plan needs >= 1 busy worker")
        if len(self.deps) != len(self.workers):
            raise InvalidScheduleError(
                f"deps cover {len(self.deps)} workers, plan has "
                f"{len(self.workers)}"
            )
        for w, wp in enumerate(self.workers):
            n_epochs = 0 if wp is None else wp.n_epochs
            if wp is not None:
                wp.validate()
            if len(self.deps[w]) != n_epochs:
                raise InvalidScheduleError(
                    f"worker {w} has {n_epochs} epochs but deps list "
                    f"{len(self.deps[w])}"
                )
            for e, edges in enumerate(self.deps[w]):
                for wu, eu in edges:
                    if not 0 <= wu < len(self.workers) or self.workers[wu] is None:
                        raise InvalidScheduleError(
                            f"epoch ({w}, {e}) depends on idle/unknown "
                            f"worker {wu}"
                        )
                    if not 0 <= eu < self.workers[wu].n_epochs:
                        raise InvalidScheduleError(
                            f"epoch ({w}, {e}) depends on missing epoch "
                            f"({wu}, {eu})"
                        )
                    if wu == w:
                        raise InvalidScheduleError(
                            f"epoch ({w}, {e}) lists a same-worker dependency "
                            "(local sequencing is implicit)"
                        )
        self.epoch_order()  # raises on a cyclic epoch graph

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def epoch_order(self) -> tuple[EpochRef, ...]:
        """Deterministic topological order of the epoch graph.

        Raises :class:`~repro.exceptions.InvalidScheduleError` if the
        cross-worker dependencies (plus the implicit local sequencing)
        form a cycle — such a plan would deadlock.
        """
        preds: dict[EpochRef, list[EpochRef]] = {}
        for w, wp in enumerate(self.workers):
            if wp is None:
                continue
            for e in range(wp.n_epochs):
                local = [(w, e - 1)] if e > 0 else []
                preds[(w, e)] = local + list(self.deps[w][e])
        indeg = {node: len(ps) for node, ps in preds.items()}
        succs: dict[EpochRef, list[EpochRef]] = {node: [] for node in preds}
        for node, ps in preds.items():
            for p in ps:
                succs[p].append(node)
        ready = [node for node, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        order: list[EpochRef] = []
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for nxt in succs[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    heapq.heappush(ready, nxt)
        if len(order) != len(preds):
            raise InvalidScheduleError(
                "cross-worker dependencies form a cycle — the plan deadlocks"
            )
        return tuple(order)


# ----------------------------------------------------------------------
# scalar oracle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelRunResult:  # repro: allow[RPR005] -- per-run record, reduced pre-export
    """Outcome of one simulated p-worker execution.

    ``worker_results`` holds each busy worker's single-chain
    :class:`~repro.simulation.engine.RunResult` (its *busy* trajectory,
    waits excluded; ``None`` for idle workers); ``worker_finish`` the
    wall-clock completion time of each worker (0 for idle ones);
    ``makespan`` their maximum.
    """

    makespan: float
    worker_finish: tuple[float, ...]
    worker_results: tuple[RunResult | None, ...]

    def _total(self, field: str) -> int:
        return sum(
            getattr(r, field) for r in self.worker_results if r is not None
        )

    @property
    def fail_stop_errors(self) -> int:
        return self._total("fail_stop_errors")

    @property
    def silent_errors(self) -> int:
        return self._total("silent_errors")

    @property
    def silent_detected(self) -> int:
        return self._total("silent_detected")

    @property
    def silent_missed(self) -> int:
        return self._total("silent_missed")

    @property
    def attempts(self) -> int:
        return self._total("attempts")


def _scalar_commit_times(
    wp: WorkerPlan, result: RunResult
) -> tuple[list[float], float]:
    """Extract the boundary commit instants from a traced scalar run."""
    events = result.trace.events
    times: list[float] = []
    for b in wp.boundaries:
        stamp = next(
            (
                ev.time
                for ev in events
                if ev.kind is EventKind.DISK_CHECKPOINT and ev.position == b
            ),
            None,
        )
        if stamp is None:  # pragma: no cover - guarded by WorkerPlan.validate
            raise SimulationError(
                f"no disk checkpoint stored at commit boundary T{b}"
            )
        times.append(stamp)
    return times, result.makespan


def _epoch_windows(
    commit_times: Sequence, busy_end, n_epochs: int
) -> "list[tuple[object, object]]":
    """Per-epoch (busy start, busy end) instants on the worker's own clock.

    Works elementwise for scalars (oracle) and arrays (batched composer)
    alike; epoch ``e`` spans ``commit_times[e-1]`` (or 0) to
    ``commit_times[e]`` (or the busy makespan for the last epoch).
    """
    windows = []
    for e in range(n_epochs):
        lo = 0.0 if e == 0 else commit_times[e - 1]
        hi = busy_end if e == n_epochs - 1 else commit_times[e]
        windows.append((lo, hi))
    return windows


def simulate_parallel_run(
    plan: ParallelPlan,
    platform: Platform,
    error_sources: Sequence[ErrorSource | None],
    *,
    record_trace: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ParallelRunResult:
    """Scalar oracle: simulate one p-worker execution of ``plan``.

    ``error_sources`` supplies one :class:`~repro.simulation.errors.
    ErrorSource` per worker — entries for idle workers may be ``None``.
    **Each busy worker needs its own instance**: a single source shared
    across workers would silently interleave one outcome stream between
    interleaved per-worker simulations (turning e.g. a scripted
    fail-stop meant for worker 0 into one striking worker 1), so sharing
    raises :class:`~repro.exceptions.SimulationError`.  See
    :mod:`repro.simulation.errors` for the per-worker stream convention.
    """
    if len(error_sources) != plan.n_workers:
        raise InvalidParameterError(
            f"plan has {plan.n_workers} workers but {len(error_sources)} "
            "error sources were supplied (pass None for idle workers)"
        )
    busy = [w for w, wp in enumerate(plan.workers) if wp is not None]
    for w in busy:
        if error_sources[w] is None:
            raise InvalidParameterError(
                f"worker {w} is busy but its error source is None"
            )
    seen: dict[int, int] = {}
    for w in busy:
        src = error_sources[w]
        if id(src) in seen:
            raise SimulationError(
                f"workers {seen[id(src)]} and {w} share the same "
                f"{type(src).__name__} instance; each worker consumes its "
                "own outcome stream, so a shared source would silently "
                "interleave outcomes between workers — give every busy "
                "worker its own instance"
            )
        seen[id(src)] = w

    results: list[RunResult | None] = [None] * plan.n_workers
    windows: dict[int, list] = {}
    for w in busy:
        wp = plan.workers[w]
        res = simulate_run(
            wp.chain,
            platform,
            wp.schedule,
            error_sources[w],
            record_trace=True,
            max_attempts=max_attempts,
            costs=wp.costs,
        )
        commits, busy_end = _scalar_commit_times(wp, res)
        windows[w] = _epoch_windows(commits, busy_end, wp.n_epochs)
        results[w] = (
            res
            if record_trace
            else RunResult(
                makespan=res.makespan,
                fail_stop_errors=res.fail_stop_errors,
                silent_errors=res.silent_errors,
                silent_detected=res.silent_detected,
                silent_missed=res.silent_missed,
                attempts=res.attempts,
            )
        )

    # Wall-clock fold over the epoch graph — float-op order mirrors the
    # vectorized composer in simulate_parallel exactly (bitwise contract).
    completion: dict[EpochRef, float] = {}
    for w, e in plan.epoch_order():
        lo, hi = windows[w][e]
        start = completion[(w, e - 1)] if e > 0 else 0.0
        for dep in plan.deps[w][e]:
            start = max(start, completion[dep])
        completion[(w, e)] = start + (hi - lo)
    finish = tuple(
        completion[(w, plan.workers[w].n_epochs - 1)] if w in windows else 0.0
        for w in range(plan.n_workers)
    )
    return ParallelRunResult(
        makespan=max(finish[w] for w in busy),
        worker_finish=finish,
        worker_results=tuple(results),
    )


# ----------------------------------------------------------------------
# batched engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelBatchResult:  # repro: allow[RPR005] -- array carrier, reduced pre-export
    """Per-replication outcome arrays of one batched p-worker campaign.

    ``makespans`` is the wall-clock completion of each replication;
    ``worker_finish`` (shape ``(n_workers, n_runs)``) each worker's
    wall-clock completion; ``worker_results`` each busy worker's
    single-chain :class:`~repro.simulation.batch.BatchResult` (busy
    trajectories — their ``makespans`` are busy times, waits excluded).
    """

    makespans: np.ndarray
    worker_finish: np.ndarray
    worker_results: tuple[BatchResult | None, ...]
    steps: int

    @property
    def n_runs(self) -> int:
        return int(self.makespans.size)

    @property
    def n_workers(self) -> int:
        return len(self.worker_results)

    def _total(self, field: str) -> np.ndarray:
        rows = [
            getattr(r, field) for r in self.worker_results if r is not None
        ]
        return np.sum(rows, axis=0)

    @property
    def fail_stop_errors(self) -> np.ndarray:
        return self._total("fail_stop_errors")

    @property
    def silent_errors(self) -> np.ndarray:
        return self._total("silent_errors")

    @property
    def silent_detected(self) -> np.ndarray:
        return self._total("silent_detected")

    @property
    def silent_missed(self) -> np.ndarray:
        return self._total("silent_missed")

    @property
    def attempts(self) -> np.ndarray:
        return self._total("attempts")

    @classmethod
    def concatenate(cls, parts: list["ParallelBatchResult"]) -> "ParallelBatchResult":
        """Stitch per-chunk results back into one batch, in chunk order."""
        n_workers = parts[0].n_workers
        workers: list[BatchResult | None] = []
        for w in range(n_workers):
            if parts[0].worker_results[w] is None:
                workers.append(None)
            else:
                workers.append(
                    BatchResult.concatenate([p.worker_results[w] for p in parts])
                )
        return cls(
            makespans=np.concatenate([p.makespans for p in parts]),
            worker_finish=np.concatenate(
                [p.worker_finish for p in parts], axis=1
            ),
            worker_results=tuple(workers),
            steps=max(p.steps for p in parts),
        )


@dataclass(frozen=True)
class _CompiledWorker:
    compiled: CompiledSchedule
    commit_segments: tuple[int, ...]  #: segment cursor per commit boundary
    n_epochs: int


@dataclass(frozen=True)
class _CompiledPlan:
    workers: tuple[_CompiledWorker | None, ...]
    deps: tuple[tuple[tuple[EpochRef, ...], ...], ...]
    epoch_order: tuple[EpochRef, ...]


def _compile_plan(plan: ParallelPlan, platform: Platform) -> _CompiledPlan:
    workers: list[_CompiledWorker | None] = []
    for wp in plan.workers:
        if wp is None:
            workers.append(None)
            continue
        compiled = compile_schedule(wp.chain, platform, wp.schedule, wp.costs)
        stops = [int(s) for s in np.asarray(compiled.stops)]
        stop_index = {pos: j for j, pos in enumerate(stops)}
        try:
            segments = tuple(stop_index[b] for b in wp.boundaries)
        except KeyError as exc:  # pragma: no cover - WorkerPlan.validate
            raise InvalidScheduleError(
                f"commit boundary T{exc.args[0]} is not a verified stop"
            ) from exc
        workers.append(_CompiledWorker(compiled, segments, wp.n_epochs))
    return _CompiledPlan(
        workers=tuple(workers), deps=plan.deps, epoch_order=plan.epoch_order()
    )


def _compose(
    cplan: _CompiledPlan,
    commit_times: "list[np.ndarray | None]",
    busy_ends: "list[np.ndarray | None]",
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized wall-clock fold (same float ops as the scalar oracle)."""
    windows: dict[int, list] = {}
    for w, cw in enumerate(cplan.workers):
        if cw is None:
            continue
        commits = [] if commit_times[w] is None else list(commit_times[w])
        windows[w] = _epoch_windows(commits, busy_ends[w], cw.n_epochs)
    completion: dict[EpochRef, np.ndarray] = {}
    zeros = np.zeros(n, dtype=np.float64)
    for w, e in cplan.epoch_order:
        lo, hi = windows[w][e]
        start = completion[(w, e - 1)] if e > 0 else zeros
        for dep in cplan.deps[w][e]:
            start = np.maximum(start, completion[dep])
        completion[(w, e)] = start + (hi - lo)
    worker_finish = np.zeros((len(cplan.workers), n), dtype=np.float64)
    makespans = None
    for w, cw in enumerate(cplan.workers):
        if cw is None:
            continue
        fin = completion[(w, cw.n_epochs - 1)]
        worker_finish[w] = fin
        makespans = fin if makespans is None else np.maximum(makespans, fin)
    return np.asarray(makespans, dtype=np.float64), worker_finish


def _run_parallel_chunk(
    cplan: _CompiledPlan,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
    backend: "str | Backend | None" = None,
) -> ParallelBatchResult:
    """Chunk entry point (module-level so it pickles for ``n_jobs``).

    Spawns one child stream per worker slot — idle workers included, so a
    worker's stream depends only on its index, never on which other
    workers happen to be busy.
    """
    worker_seeds = child.spawn(len(cplan.workers))
    results: list[BatchResult | None] = [None] * len(cplan.workers)
    commit_times: list[np.ndarray | None] = [None] * len(cplan.workers)
    busy_ends: list[np.ndarray | None] = [None] * len(cplan.workers)
    steps = 0
    for w, cw in enumerate(cplan.workers):
        if cw is None:
            continue
        res = run_compiled(
            cw.compiled,
            n,
            np.random.default_rng(worker_seeds[w]),
            max_attempts,
            backend,
            commit_stops=list(cw.commit_segments) or None,
        )
        results[w] = res
        commit_times[w] = res.commit_times
        busy_ends[w] = res.makespans
        steps = max(steps, res.steps)
    makespans, worker_finish = _compose(cplan, commit_times, busy_ends, n)
    return ParallelBatchResult(
        makespans=makespans,
        worker_finish=worker_finish,
        worker_results=tuple(results),
        steps=steps,
    )


def _run_parallel_chunk_observed(
    cplan: _CompiledPlan,
    child: np.random.SeedSequence,
    n: int,
    max_attempts: int,
    backend: "str | Backend | None" = None,
):
    """Chunk entry point that ships its kernel metrics and events home.

    Worker processes inherit no ambient instrumentation, so the chunk
    runs under a private registry and event bus whose snapshots ride back
    with the result for the parent to merge/replay.
    """
    from ..obs import EventBus, MetricsRegistry, instrument

    reg = MetricsRegistry()
    bus = EventBus()
    with instrument(reg, events=bus):
        part = _run_parallel_chunk(cplan, child, n, max_attempts, backend)
    return part, reg.snapshot(), bus.snapshot()


def simulate_parallel(
    plan: ParallelPlan,
    platform: Platform,
    n_runs: int,
    *,
    seed: int | np.random.SeedSequence | None = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backend: "str | Backend | None" = None,
) -> ParallelBatchResult:
    """Simulate ``n_runs`` p-worker executions of ``plan`` in batches.

    Seeding discipline extends :func:`~repro.simulation.batch.
    simulate_batch` one level: chunk ``c`` still draws from the ``c``-th
    child of the campaign ``SeedSequence``, and each chunk child spawns
    one grandchild *per worker slot* (idle slots included).  Worker ``w``
    of chunk ``c`` therefore consumes a stream determined only by
    ``(seed, n_runs, chunk_size, w)`` — bit-identical whatever ``n_jobs``
    or the execution ``backend`` is, and regenerable replication-by-
    replication with :func:`worker_uniform_rows` for scalar replay.
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    be = get_backend(backend)  # resolve (and fail) before any work
    cplan = _compile_plan(plan, platform)
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = _chunk_sizes(n_runs, chunk_size)
    children = seed_seq.spawn(len(sizes))

    n_busy = sum(1 for cw in cplan.workers if cw is not None)
    with _span(
        "sim.parallel",
        n_runs=n_runs,
        workers=n_busy,
        chunks=len(sizes),
        n_jobs=n_jobs or 1,
    ):
        if n_jobs is not None and n_jobs > 1 and len(sizes) > 1:
            _require_shardable(be)
            from concurrent.futures import ProcessPoolExecutor

            observing = _metrics().enabled or _events().enabled
            entry = (
                _run_parallel_chunk_observed
                if observing
                else _run_parallel_chunk
            )
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(sizes))
            ) as pool:
                parts = list(
                    pool.map(
                        entry,
                        [cplan] * len(sizes),
                        children,
                        sizes,
                        [max_attempts] * len(sizes),
                        [be.name] * len(sizes),  # workers re-resolve by name
                    )
                )
            if observing:
                for _, snap, esnap in parts:
                    _metrics().merge_snapshot(snap)
                    _events().replay(esnap)
                parts = [part for part, _, _ in parts]
        else:
            parts = [
                _run_parallel_chunk(cplan, child, n, max_attempts, be)
                for child, n in zip(children, sizes)
            ]
    result = parts[0] if len(parts) == 1 else ParallelBatchResult.concatenate(parts)
    reg = _metrics()
    if reg.enabled:
        # Host-side accounting over the composed campaign: each busy
        # worker's cumulative busy seconds (its busy-trajectory makespans)
        # and stall seconds (wall-clock finish minus busy time — waiting
        # on producers' commits), plus the commit-stop crossings stamped
        # by the kernels.
        reg.counter("sim.parallel.replications").inc(n_runs)
        n_commits = 0
        for w, cw in enumerate(cplan.workers):
            if cw is None:
                continue
            busy = result.worker_results[w].makespans
            stall = result.worker_finish[w] - busy
            reg.timer(f"sim.parallel.worker{w}.busy").observe(float(busy.sum()))
            reg.timer(f"sim.parallel.worker{w}.idle").observe(
                float(stall.sum())
            )
            n_commits += len(cw.commit_segments) * n_runs
        reg.counter("sim.parallel.commits").inc(n_commits)
    return result


def worker_uniform_rows(
    seed: int | np.random.SeedSequence | None,
    n_runs: int,
    n_workers: int,
    worker: int,
    rep_index: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[np.ndarray]:
    """Yield the ``(3,)`` uniform rows worker ``worker`` consumes for
    replication ``rep_index`` of a :func:`simulate_parallel` campaign.

    The parallel analogue of :func:`~repro.simulation.batch.
    replication_uniform_rows`: regenerates the chunk child, spawns the
    per-worker grandchildren with the same discipline, and slices out one
    replication's column of the chosen worker's stream.  Feeding the rows
    to :class:`~repro.simulation.batch.InverseTransformErrorSource` makes
    the scalar engine replay that worker's busy trajectory bitwise.
    """
    if not 0 <= rep_index < n_runs:
        raise InvalidParameterError(
            f"rep_index must be in [0, {n_runs}), got {rep_index}"
        )
    if not 0 <= worker < n_workers:
        raise InvalidParameterError(
            f"worker must be in [0, {n_workers}), got {worker}"
        )
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    sizes = _chunk_sizes(n_runs, chunk_size)
    chunk = rep_index // chunk_size
    offset = rep_index % chunk_size
    chunk_child = seed_seq.spawn(len(sizes))[chunk]
    rng = np.random.default_rng(chunk_child.spawn(n_workers)[worker])
    chunk_n = sizes[chunk]

    def _rows():
        while True:
            yield rng.random((3, chunk_n))[:, offset]

    return _rows()
