"""Monte-Carlo estimation of a schedule's expected makespan.

Two interchangeable engines drive the campaign:

* ``engine="batch"`` (default) — the vectorized lockstep engine of
  :mod:`repro.simulation.batch`, which advances every replication at once
  with NumPy and shards chunks across processes via ``n_jobs``; this is
  the production path, orders of magnitude faster than the scalar loop;
* ``engine="scalar"`` — one :func:`repro.simulation.engine.simulate_run`
  per replication with an independent child stream per run; kept as the
  trusted oracle the batched engine is cross-validated against.

Either way the result carries the raw samples, the summary statistics,
and — when an analytic reference is supplied — the agreement check used
by the validation suite (the analytic value must fall inside the sample
CI).  The two engines use different (both reproducible) stream
disciplines, so their samples differ for the same seed; only their
distributions agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError
from ..platforms import Platform
from ..core.schedule import Schedule
from .batch import DEFAULT_CHUNK_SIZE, simulate_batch
from .engine import RunResult, simulate_run
from .errors import PoissonErrorSource
from .stats import SampleSummary, summarize

__all__ = ["MonteCarloResult", "run_monte_carlo"]


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate of a Monte-Carlo campaign.

    Attributes
    ----------
    samples:
        Raw makespans, one per run (seconds).
    summary:
        :class:`~repro.simulation.stats.SampleSummary` of the samples.
    mean_fail_stops / mean_silent_errors:
        Average error counts per run, useful sanity indicators.
    analytic:
        The analytic expected makespan this campaign was compared against
        (``nan`` when not supplied).
    """

    samples: np.ndarray
    summary: SampleSummary
    mean_fail_stops: float
    mean_silent_errors: float
    analytic: float = float("nan")

    @property
    def mean(self) -> float:
        """Sample mean makespan (s)."""
        return self.summary.mean

    @property
    def agrees_with_analytic(self) -> bool:
        """True if the analytic value lies inside the CI on the mean."""
        return not np.isnan(self.analytic) and self.summary.contains(self.analytic)

    @property
    def relative_gap(self) -> float:
        """``(sample mean - analytic) / analytic`` (``nan`` if no reference)."""
        if np.isnan(self.analytic) or self.analytic == 0.0:
            return float("nan")
        return (self.mean - self.analytic) / self.analytic

    def report(self) -> str:
        """One-paragraph textual report."""
        lines = [f"Monte-Carlo: {self.summary}"]
        lines.append(
            f"  mean fail-stop errors/run: {self.mean_fail_stops:.3f}, "
            f"mean silent corruptions/run: {self.mean_silent_errors:.3f}"
        )
        if not np.isnan(self.analytic):
            lines.append(
                f"  analytic E[makespan] = {self.analytic:.2f}s "
                f"(gap {self.relative_gap:+.3%}, "
                f"{'inside' if self.agrees_with_analytic else 'OUTSIDE'} the "
                f"{self.summary.confidence:.0%} CI)"
            )
        return "\n".join(lines)


def run_monte_carlo(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    *,
    runs: int = 1000,
    seed: int | np.random.SeedSequence | None = 0,
    confidence: float = 0.99,
    analytic: float = float("nan"),
    max_attempts: int | None = None,
    costs=None,
    engine: str = "batch",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
) -> MonteCarloResult:
    """Estimate the expected makespan of ``schedule`` by simulation.

    Parameters
    ----------
    runs:
        Number of independent simulated executions.
    seed:
        Seed (or ``SeedSequence``) for reproducible streams; each run gets
        an independent child stream.
    analytic:
        Optional analytic expected makespan to compare against.
    max_attempts:
        Per-run segment-attempt cap forwarded to the engine.
    engine:
        ``"batch"`` (vectorized, default) or ``"scalar"`` (the trusted
        per-run oracle loop).
    chunk_size / n_jobs:
        Batched-engine knobs: replications per vectorized chunk, and the
        number of worker processes chunks are sharded over (``None`` or
        1 = in-process).  Ignored by the scalar engine.
    """
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    if engine not in ("batch", "scalar"):
        raise InvalidParameterError(
            f"engine must be 'batch' or 'scalar', got {engine!r}"
        )
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )

    if engine == "batch":
        batch_kwargs = {} if max_attempts is None else {"max_attempts": max_attempts}
        batch = simulate_batch(
            chain,
            platform,
            schedule,
            runs,
            seed=seed_seq,
            costs=costs,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
            **batch_kwargs,
        )
        samples = batch.makespans
        fail_stops = int(batch.fail_stop_errors.sum())
        silents = int(batch.silent_errors.sum())
    else:
        children = seed_seq.spawn(runs)
        samples = np.empty(runs, dtype=np.float64)
        fail_stops = 0
        silents = 0
        kwargs = {} if max_attempts is None else {"max_attempts": max_attempts}
        if costs is not None:
            kwargs["costs"] = costs
        for i in range(runs):
            source = PoissonErrorSource(
                platform, np.random.default_rng(children[i])
            )
            result: RunResult = simulate_run(
                chain, platform, schedule, source, **kwargs
            )
            samples[i] = result.makespan
            fail_stops += result.fail_stop_errors
            silents += result.silent_errors

    return MonteCarloResult(
        samples=samples,
        summary=summarize(samples, confidence),
        mean_fail_stops=fail_stops / runs,
        mean_silent_errors=silents / runs,
        analytic=analytic,
    )
