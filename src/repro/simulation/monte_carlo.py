"""Monte-Carlo estimation of a schedule's expected makespan.

Three campaign modes share one entry point, :func:`run_monte_carlo`:

* ``engine="batch"`` (default) — the vectorized lockstep engine of
  :mod:`repro.simulation.batch`, which advances every replication at once
  with NumPy and shards chunks across processes via ``n_jobs``; this is
  the production path, orders of magnitude faster than the scalar loop;
* ``engine="scalar"`` — one :func:`repro.simulation.engine.simulate_run`
  per replication with an independent child stream per run; kept as the
  trusted oracle the batched engine is cross-validated against;
* ``target_ci=<fraction>`` — the adaptive-precision orchestrator
  (:mod:`repro.simulation.adaptive`): instead of a fixed replication
  count, the campaign runs batched rounds until the relative CI
  half-width on the mean reaches the target (``runs`` then acts as the
  hard replication cap), and the result carries the convergence report.

Every mode reports the per-category time breakdown
(:data:`~repro.simulation.breakdown.TIME_CATEGORIES`): the batched paths
accumulate it vectorized in the lockstep kernel, the scalar path
aggregates it from run traces — the two are cross-validated bitwise in
the test suite.  When an analytic reference is supplied the result also
carries the agreement check used by the validation suite (the analytic
value must fall inside the sample CI).  The engines use different (both
reproducible) stream disciplines, so their samples differ for the same
seed; only their distributions agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError
from ..obs import get_logger, span as _span
from ..platforms import Platform
from ..core.schedule import Schedule
from .adaptive import DEFAULT_MIN_RUNS, AdaptiveResult, run_adaptive
from .backend import Backend, canonical_name, get_backend
from .batch import DEFAULT_CHUNK_SIZE, simulate_batch
from .breakdown import aggregate_trace, render_breakdown
from .engine import RunResult, simulate_run
from .errors import PoissonErrorSource
from .stats import SampleSummary, certified_agreement, summarize

__all__ = ["MonteCarloResult", "run_monte_carlo"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate of a Monte-Carlo campaign.

    Attributes
    ----------
    samples:
        Raw makespans, one per run (seconds).  Empty for adaptive
        campaigns: the orchestrator streams moments and never retains the
        full sample (``summary`` still carries everything but quantiles).
    summary:
        :class:`~repro.simulation.stats.SampleSummary` of the samples.
    mean_fail_stops / mean_silent_errors:
        Average error counts per run, useful sanity indicators.
    analytic:
        The analytic expected makespan this campaign was compared against
        (``nan`` when not supplied).
    breakdown:
        Mean seconds per run for each accounting category
        (:data:`~repro.simulation.breakdown.TIME_CATEGORIES`).
    convergence:
        The :class:`~repro.simulation.adaptive.AdaptiveResult` of an
        adaptive-precision campaign (None for fixed-N campaigns).
    backend:
        Name of the array-API backend the batched kernel ran on
        (``"numpy"`` for the scalar oracle engine).
    """

    samples: np.ndarray
    summary: SampleSummary
    mean_fail_stops: float
    mean_silent_errors: float
    analytic: float = float("nan")
    breakdown: dict[str, float] | None = None
    convergence: AdaptiveResult | None = None
    useful_work: float = float("nan")  #: chain one-pass weight (s), for the
    #: useful/re-executed split in the breakdown rendering
    backend: str = "numpy"

    @property
    def mean(self) -> float:
        """Sample mean makespan (s)."""
        return self.summary.mean

    @property
    def runs(self) -> int:
        """Replications the campaign actually spent."""
        return self.summary.count

    @property
    def agrees_with_analytic(self) -> bool:
        """True if the analytic value lies inside a *bounded* CI on the mean
        (see :func:`~repro.simulation.stats.certified_agreement`)."""
        return certified_agreement(self.summary, self.analytic)

    @property
    def relative_gap(self) -> float:
        """``(sample mean - analytic) / analytic`` (``nan`` if no reference)."""
        if np.isnan(self.analytic) or self.analytic == 0.0:
            return float("nan")
        return (self.mean - self.analytic) / self.analytic

    def report(self, show_breakdown: bool = True) -> str:
        """Textual report: summary, agreement, convergence, breakdown."""
        lines = [f"Monte-Carlo: {self.summary}"]
        lines.append(
            f"  mean fail-stop errors/run: {self.mean_fail_stops:.3f}, "
            f"mean silent corruptions/run: {self.mean_silent_errors:.3f}"
        )
        if not np.isnan(self.analytic):
            if np.isinf(self.summary.ci_half_width):
                verdict = "CI unbounded: nothing certified"
            else:
                verdict = (
                    f"{'inside' if self.agrees_with_analytic else 'OUTSIDE'} "
                    f"the {self.summary.confidence:.0%} CI"
                )
            lines.append(
                f"  analytic E[makespan] = {self.analytic:.2f}s "
                f"(gap {self.relative_gap:+.3%}, {verdict})"
            )
        if self.convergence is not None:
            lines.append(self.convergence.convergence_report())
        if show_breakdown and self.breakdown is not None:
            useful = None if np.isnan(self.useful_work) else self.useful_work
            lines.append(render_breakdown(self.breakdown, useful_work=useful))
        return "\n".join(lines)


def run_monte_carlo(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    *,
    runs: int = 1000,
    seed: int | np.random.SeedSequence | None = 0,
    confidence: float = 0.99,
    analytic: float = float("nan"),
    max_attempts: int | None = None,
    costs=None,
    engine: str = "batch",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    n_jobs: int | None = None,
    target_ci: float | None = None,
    backend: "str | Backend | None" = None,
) -> MonteCarloResult:
    """Estimate the expected makespan of ``schedule`` by simulation.

    Parameters
    ----------
    runs:
        Number of independent simulated executions — the exact count for
        fixed-N campaigns, the hard cap when ``target_ci`` is set.
    seed:
        Seed (or ``SeedSequence``) for reproducible streams; each run gets
        an independent child stream.
    analytic:
        Optional analytic expected makespan to compare against.
    max_attempts:
        Per-run segment-attempt cap forwarded to the engine.
    engine:
        ``"batch"`` (vectorized, default) or ``"scalar"`` (the trusted
        per-run oracle loop).
    chunk_size / n_jobs:
        Batched-engine knobs: replications per vectorized chunk, and the
        number of worker processes chunks are sharded over (``None`` or
        1 = in-process).  Ignored by the scalar engine.
    target_ci:
        Relative CI half-width to certify (e.g. ``0.01`` for ±1%).  When
        set, the adaptive orchestrator replaces the fixed count: rounds of
        replications run until the precision target is met (or the
        ``runs`` cap is hit), and the result carries the convergence
        report.  Batch engine only.
    backend:
        Array-API backend for the batched kernel — a registered name, a
        :class:`~repro.simulation.backend.Backend` handle, or ``None``
        for the ``REPRO_BACKEND`` / NumPy default.  The scalar oracle is
        a host NumPy loop: it ignores the environment default and rejects
        an explicit non-NumPy selection.
    """
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    if engine not in ("batch", "scalar"):
        raise InvalidParameterError(
            f"engine must be 'batch' or 'scalar', got {engine!r}"
        )
    if engine == "scalar":
        requested = (
            backend.name if isinstance(backend, Backend) else backend
        )
        if requested is not None and canonical_name(requested) != "numpy":
            raise InvalidParameterError(
                "the scalar oracle engine runs on NumPy only; "
                f"backend {requested!r} requires engine='batch'"
            )
        backend_name = "numpy"
    else:
        backend = get_backend(backend)
        backend_name = backend.name
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )

    if target_ci is not None:
        if engine != "batch":
            raise InvalidParameterError(
                "target_ci requires the batched engine (adaptive campaigns "
                "stream moments through the lockstep kernel)"
            )
        adaptive = run_adaptive(
            chain,
            platform,
            schedule,
            target_relative_ci=target_ci,
            confidence=confidence,
            min_runs=min(DEFAULT_MIN_RUNS, runs),
            max_runs=runs,
            seed=seed_seq,
            costs=costs,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
            analytic=analytic,
            backend=backend,
            **({} if max_attempts is None else {"max_attempts": max_attempts}),
        )
        n = adaptive.reps_used
        return MonteCarloResult(
            samples=np.empty(0, dtype=np.float64),
            summary=adaptive.summary,
            mean_fail_stops=adaptive.fail_stop_errors / n,
            mean_silent_errors=adaptive.silent_errors / n,
            analytic=analytic,
            breakdown=adaptive.breakdown_means(),
            convergence=adaptive,
            useful_work=float(chain.total_weight),
            backend=backend_name,
        )

    if engine == "batch":
        batch_kwargs = {} if max_attempts is None else {"max_attempts": max_attempts}
        batch = simulate_batch(
            chain,
            platform,
            schedule,
            runs,
            seed=seed_seq,
            costs=costs,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
            backend=backend,
            **batch_kwargs,
        )
        samples = batch.makespans
        fail_stops = int(batch.fail_stop_errors.sum())
        silents = int(batch.silent_errors.sum())
        breakdown = batch.breakdown.means()
    else:
        children = seed_seq.spawn(runs)
        samples = np.empty(runs, dtype=np.float64)
        fail_stops = 0
        silents = 0
        totals = None
        kwargs = {} if max_attempts is None else {"max_attempts": max_attempts}
        if costs is not None:
            kwargs["costs"] = costs
        with _span("sim.scalar", runs=runs):
            for i in range(runs):
                source = PoissonErrorSource(
                    platform, np.random.default_rng(children[i])
                )
                # Traces are recorded solely to aggregate the per-category
                # breakdown — a deliberate cost on the oracle path (it is
                # the cross-validation reference, never the production
                # engine; the ~20% slowdown keeps its accounting on the
                # exact code path the bitwise replay tests certify).
                result: RunResult = simulate_run(
                    chain, platform, schedule, source, record_trace=True, **kwargs
                )
                samples[i] = result.makespan
                fail_stops += result.fail_stop_errors
                silents += result.silent_errors
                per_run = aggregate_trace(result.trace)
                if totals is None:
                    totals = per_run
                else:
                    for category, seconds in per_run.items():
                        totals[category] += seconds
        breakdown = {c: v / runs for c, v in totals.items()}

    logger.debug(
        "run_monte_carlo: engine=%s runs=%d backend=%s",
        engine,
        runs,
        backend_name,
    )
    return MonteCarloResult(
        samples=samples,
        summary=summarize(samples, confidence),
        mean_fail_stops=fail_stops / runs,
        mean_silent_errors=silents / runs,
        analytic=analytic,
        breakdown=breakdown,
        useful_work=float(chain.total_weight),
        backend=backend_name,
    )
