"""Execution traces: the event log produced by the simulation engine.

Every state change of a simulated run is recorded as a :class:`TraceEvent`
with a wall-clock timestamp (seconds since run start) and the *duration*
the event added to the clock.  Traces serve three purposes:
failure-injection tests assert on exact event sequences, examples
pretty-print them to explain the model, and
:func:`repro.simulation.breakdown.aggregate_trace` folds the durations
into the per-category time breakdown the batched engine is
cross-validated against bitwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "TraceEvent", "Trace"]


class EventKind(enum.Enum):
    """What happened at a trace point."""

    SEGMENT_START = "segment_start"  #: began executing tasks after a stop
    SEGMENT_DONE = "segment_done"  #: reached the next verified position
    FAIL_STOP = "fail_stop"  #: fail-stop error interrupted the segment
    DISK_RECOVERY = "disk_recovery"  #: rolled back to the last disk ckpt
    SILENT_INTRODUCED = "silent_introduced"  #: a silent error corrupted data
    VERIFICATION = "verification"  #: a verification executed (cost paid)
    SILENT_DETECTED = "silent_detected"  #: corruption caught by verification
    SILENT_MISSED = "silent_missed"  #: partial verification missed corruption
    MEMORY_RECOVERY = "memory_recovery"  #: rolled back to the last memory ckpt
    MEMORY_CHECKPOINT = "memory_checkpoint"  #: memory checkpoint stored
    DISK_CHECKPOINT = "disk_checkpoint"  #: disk checkpoint stored
    COMPLETE = "complete"  #: the application finished correctly


@dataclass(frozen=True)
class TraceEvent:
    """One event of a simulated execution.

    Attributes
    ----------
    time:
        Wall-clock time (s) at which the event *completes*.
    kind:
        Event category.
    position:
        Task index the event refers to (1-based; 0 = virtual start).
    detail:
        Free-form extra information (e.g. rollback target).
    duration:
        Wall-clock seconds the event added (the exact float the engine
        added to its clock, so per-category sums can be compared bitwise
        against the batched engine); 0 for pure markers.
    """

    time: float
    kind: EventKind
    position: int
    detail: str = ""
    duration: float = 0.0

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:12.2f}s] {self.kind.value:18s} @T{self.position}{extra}"


@dataclass
class Trace:
    """Ordered list of events plus cheap per-category accounting."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        time: float,
        kind: EventKind,
        position: int,
        detail: str = "",
        duration: float = 0.0,
    ) -> None:
        """Append an event (no-op when recording is disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(time, kind, position, detail, duration))

    def count(self, kind: EventKind) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for e in self.events if e.kind == kind)

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of ``kind``, in order."""
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self, limit: int | None = None) -> str:
        """Human-readable multi-line rendering (first ``limit`` events)."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
