"""Per-category time accounting for simulated executions.

Every second a replication spends is attributed to exactly one of the
:data:`TIME_CATEGORIES`:

* ``work`` — completed segment executions (first pass *and* re-executions
  after a rollback);
* ``fail_stop_lost`` — downtime: partial segment work thrown away when a
  fail-stop error interrupts mid-segment;
* ``disk_recovery`` / ``memory_recovery`` — recovery transfers after a
  fail-stop rollback / a detected corruption;
* ``verification`` — guaranteed and partial verification costs;
* ``memory_checkpoint`` / ``disk_checkpoint`` — checkpoint transfers.

The categories sum to the makespan.  Two independent producers feed them:

* the batched lockstep kernel (:func:`repro.simulation.batch.run_compiled`)
  accumulates a ``(n_categories, n_runs)`` array with one scatter-add per
  category per step, wrapped here as :class:`BatchBreakdown`;
* the scalar engine's trace carries the exact float added to the clock in
  each :class:`~repro.simulation.trace.TraceEvent.duration`;
  :func:`aggregate_trace` folds those into the same categories.

Both producers add the *same* IEEE doubles in the *same* per-category
order, so on identical uniform streams the two breakdowns agree **bitwise**
— the test suite's strongest cross-validation layer extends to the
accounting, not just the makespans.

Derived quantities: given the chain's one-pass total weight,
``work - total_weight`` is the wasted re-executed work, which is how
:func:`render_breakdown` presents it (mirroring the analytic
:meth:`~repro.core.evaluator.MarkovEvaluation.waste_breakdown`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .backend import array_namespace
from .trace import EventKind, Trace

__all__ = [
    "TIME_CATEGORIES",
    "BatchBreakdown",
    "aggregate_trace",
    "to_analytic_categories",
    "render_breakdown",
]

#: Accounting categories, in array-row order.  They partition the makespan.
TIME_CATEGORIES: tuple[str, ...] = (
    "work",
    "fail_stop_lost",
    "disk_recovery",
    "memory_recovery",
    "verification",
    "memory_checkpoint",
    "disk_checkpoint",
)

#: Row index of each category in a breakdown array.
CATEGORY_INDEX: dict[str, int] = {c: i for i, c in enumerate(TIME_CATEGORIES)}

#: Trace event kinds carrying a duration, mapped to their category.
_KIND_TO_CATEGORY: dict[EventKind, str] = {
    EventKind.SEGMENT_DONE: "work",
    EventKind.FAIL_STOP: "fail_stop_lost",
    EventKind.DISK_RECOVERY: "disk_recovery",
    EventKind.MEMORY_RECOVERY: "memory_recovery",
    EventKind.VERIFICATION: "verification",
    EventKind.MEMORY_CHECKPOINT: "memory_checkpoint",
    EventKind.DISK_CHECKPOINT: "disk_checkpoint",
}


@dataclass(frozen=True)
class BatchBreakdown:
    """Per-replication time accounting of a batched campaign.

    ``per_run`` has shape ``(len(TIME_CATEGORIES), n_runs)``; row order is
    :data:`TIME_CATEGORIES`.  The accessors are array-API generic — they
    resolve the array's own namespace, so a breakdown works unchanged
    whether ``per_run`` is a NumPy buffer (the engine's host-side result
    contract) or still lives on another backend.
    """

    per_run: Any

    @property
    def n_runs(self) -> int:
        return int(self.per_run.shape[1])

    def run(self, i: int) -> dict[str, float]:
        """Category -> seconds for replication ``i``."""
        return {c: float(self.per_run[k, i]) for c, k in CATEGORY_INDEX.items()}

    def totals(self) -> dict[str, float]:
        """Category -> summed seconds over all replications."""
        xp = array_namespace(self.per_run)
        sums = xp.sum(self.per_run, axis=1)
        return {c: float(sums[k]) for c, k in CATEGORY_INDEX.items()}

    def means(self) -> dict[str, float]:
        """Category -> mean seconds per replication."""
        xp = array_namespace(self.per_run)
        means = xp.mean(self.per_run, axis=1)
        return {c: float(means[k]) for c, k in CATEGORY_INDEX.items()}

    def sum_per_run(self) -> Any:
        """Per-replication category sums (should reconstruct the makespans)."""
        xp = array_namespace(self.per_run)
        return xp.sum(self.per_run, axis=0)

    @classmethod
    def concatenate(cls, parts: list["BatchBreakdown"]) -> "BatchBreakdown":
        xp = array_namespace(parts[0].per_run)
        return cls(per_run=xp.concat([p.per_run for p in parts], axis=1))


def aggregate_trace(trace: Trace) -> dict[str, float]:
    """Fold a scalar-engine trace into per-category times.

    Sums the recorded event durations per category in event (= clock)
    order, i.e. with exactly the additions the batched kernel performs per
    replication — bitwise comparable on identical uniform streams.
    """
    out = dict.fromkeys(TIME_CATEGORIES, 0.0)
    for event in trace:
        category = _KIND_TO_CATEGORY.get(event.kind)
        if category is not None:
            out[category] += event.duration
    return out


def to_analytic_categories(breakdown: dict[str, float]) -> dict[str, float]:
    """Coarsen a simulated breakdown to the analytic evaluator's categories.

    Matches :data:`repro.core.evaluator.COST_CATEGORIES`, so simulated
    means can be compared against the Markov evaluator's expected-time
    components term by term.
    """
    return {
        "work": breakdown["work"],
        "fail_stop_loss": breakdown["fail_stop_lost"],
        "recovery": breakdown["disk_recovery"] + breakdown["memory_recovery"],
        "verification": breakdown["verification"],
        "checkpointing": breakdown["memory_checkpoint"]
        + breakdown["disk_checkpoint"],
    }


def render_breakdown(
    breakdown: dict[str, float],
    *,
    useful_work: float | None = None,
    title: str = "simulated per-run time breakdown:",
) -> str:
    """Human-readable table of a (mean) per-category breakdown.

    When ``useful_work`` (the chain's one-pass weight) is given, the
    ``work`` row is split into useful and re-executed work, mirroring the
    analytic waste breakdown.
    """
    rows: list[tuple[str, float]] = []
    if useful_work is not None:
        rows.append(("useful_work", useful_work))
        rows.append(("re_executed_work", breakdown["work"] - useful_work))
    else:
        rows.append(("work", breakdown["work"]))
    for name in TIME_CATEGORIES[1:]:
        rows.append((name, breakdown[name]))
    total = sum(breakdown.values())
    lines = [title]
    for name, value in rows:
        share = value / total if total else 0.0
        lines.append(f"  {name:17s} {value:12.2f}s  ({share:6.2%})")
    lines.append(f"  {'total':17s} {total:12.2f}s")
    return "\n".join(lines)
