"""repro — two-level checkpointing and verifications for linear task graphs.

A production-quality reproduction of Benoit, Cavelan, Robert & Sun,
*"Two-Level Checkpointing and Verifications for Linear Task Graphs"*
(PDSEC/IPDPSW 2016): optimal dynamic-programming placement of disk
checkpoints, in-memory checkpoints, guaranteed verifications and partial
verifications on linear task chains subject to fail-stop and silent errors,
with exact Markov evaluation, a fault-injection simulator, baselines, and
the paper's full experimental harness.

Quickstart
----------
>>> import repro
>>> chain = repro.uniform_chain(20)
>>> solution = repro.optimize(chain, repro.HERA, algorithm="admv")
>>> round(solution.normalized_makespan, 2) >= 1.0
True
"""

import logging as _logging

from .chains import (
    PAPER_TOTAL_WEIGHT,
    Task,
    TaskChain,
    decrease_chain,
    highlow_chain,
    make_chain,
    uniform_chain,
)
from .core import (
    ALGORITHMS,
    Action,
    CostProfile,
    Schedule,
    Solution,
    error_free_time,
    evaluate_schedule,
    exhaustive_search,
    optimize,
)
from .exceptions import (
    InvalidChainError,
    InvalidParameterError,
    InvalidScheduleError,
    ReproError,
    SimulationError,
    SolverError,
)
from .platforms import (
    ATLAS,
    COASTAL,
    COASTAL_SSD,
    HERA,
    Platform,
    get_platform,
)

# Library logging policy: everything logs under the "repro" hierarchy
# and the package itself stays silent unless the application (or the
# CLI's --log-level) configures a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # chains
    "Task",
    "TaskChain",
    "uniform_chain",
    "decrease_chain",
    "highlow_chain",
    "make_chain",
    "PAPER_TOTAL_WEIGHT",
    # platforms
    "Platform",
    "HERA",
    "ATLAS",
    "COASTAL",
    "COASTAL_SSD",
    "get_platform",
    # core
    "Action",
    "Schedule",
    "Solution",
    "CostProfile",
    "optimize",
    "ALGORITHMS",
    "evaluate_schedule",
    "error_free_time",
    "exhaustive_search",
    # exceptions
    "ReproError",
    "InvalidParameterError",
    "InvalidChainError",
    "InvalidScheduleError",
    "SolverError",
    "SimulationError",
]
