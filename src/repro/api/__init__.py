"""Public serialization facade: unified documents + content hashing.

``repro.api`` is the one place the JSON surface of the project is
defined: :func:`as_document` / :func:`from_document` turn every result
and model object into (and back from) a versioned, consistently-keyed
document, and :func:`canonical_hash` gives any model object a stable
content address.  The CLI ``--json`` output and every ``repro serve``
endpoint emit these documents; ``docs/API.md`` is the reference.
"""

from .hashing import CANONICAL_HASH_VERSION, canonical_hash, canonical_payload
from .results import (
    SCHEMA_VERSION,
    as_document,
    document_kind,
    finite_or_none,
    from_document,
)

__all__ = [
    "CANONICAL_HASH_VERSION",
    "canonical_hash",
    "canonical_payload",
    "SCHEMA_VERSION",
    "as_document",
    "from_document",
    "document_kind",
    "finite_or_none",
]
