"""Content-addressed hashing of model objects.

:func:`canonical_hash` maps any instance the optimizer/simulator stack
consumes — :class:`~repro.platforms.Platform`,
:class:`~repro.chains.TaskChain`, :class:`~repro.dag.WorkflowDAG`,
:class:`~repro.core.Schedule`, :class:`~repro.core.CostProfile`, plus
arbitrary JSON-style composites of them — to a stable hex digest.  The
digest is what the service layer keys its caches on: two requests
describing the same computation hash identically, whatever process they
came from and however their dicts were ordered.

Stability contract (hypothesis-tested in ``tests/test_api.py``):

- **process-stable** — no ``id()``, no ``hash()``, no iteration-order
  dependence; dict keys are sorted, DAG edges sorted canonically.
- **representation-exact** — floats are hashed from ``float.hex()``, so
  two values hash alike iff they are the same IEEE-754 double.  ``1``
  (int) and ``1.0`` (float) hash differently on purpose: the solvers
  treat them identically but the canonical form refuses to guess.
- **name-blind for display labels** — a chain's or DAG's display
  ``name`` never enters the digest (the same weights are the same
  content); DAG *task* names do, because edges reference them.
- **round-trip-stable** — ``from_dict(as_dict(x))`` hashes like ``x``.

The payload grammar is versioned (:data:`CANONICAL_HASH_VERSION`); bump
it whenever the canonical form of any type changes, so stale
content-addressed caches can never serve a value computed under
different semantics.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from ..chains import TaskChain
from ..core.costs import CostProfile
from ..core.schedule import Schedule
from ..dag.workflow import WorkflowDAG, canonical_node_key
from ..platforms import Platform

__all__ = ["CANONICAL_HASH_VERSION", "canonical_payload", "canonical_hash"]

#: Version of the canonical payload grammar (prefixed into every digest).
CANONICAL_HASH_VERSION = 1

_PLATFORM_FIELDS = ("lf", "ls", "CD", "CM", "RD", "RM", "Vg", "Vp", "r")
_COST_FIELDS = ("CD", "CM", "RD", "RM", "Vg", "Vp")


def _hex(value: float) -> str:
    """Exact, canonical text form of one double (``inf``/``nan`` safe)."""
    return float(value).hex()


def _hex_list(values: Any) -> list[str]:
    return [_hex(v) for v in np.asarray(values, dtype=np.float64).ravel()]


def canonical_payload(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-dumpable canonical structure.

    Model objects become tagged lists (``["platform", {...}]``, ...);
    mappings become string-keyed dicts (sorted at dump time); floats
    become tagged hex strings.  Raises :class:`TypeError` for types with
    no canonical form — hashing something unhashable-by-content (an open
    file, a live registry) is a bug, not a degraded cache key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", _hex(obj)]
    if isinstance(obj, (np.floating,)):
        return ["f", _hex(float(obj))]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind in "fc":
            return ["f[]", _hex_list(obj)]
        return ["i[]", [int(v) for v in obj.ravel()]]
    if isinstance(obj, Platform):
        return [
            "platform",
            {name: _hex(getattr(obj, name)) for name in _PLATFORM_FIELDS},
        ]
    if isinstance(obj, TaskChain):
        return ["chain", _hex_list(obj.weights)]
    if isinstance(obj, Schedule):
        return ["schedule", obj.to_string()]
    if isinstance(obj, CostProfile):
        return [
            "costs",
            {name: _hex_list(getattr(obj, name)) for name in _COST_FIELDS},
        ]
    if isinstance(obj, WorkflowDAG):
        nodes = sorted(obj.graph.nodes, key=canonical_node_key)
        doc: dict[str, Any] = {
            "tasks": {str(v): _hex(obj.weight(v)) for v in nodes},
            "edges": sorted(
                [str(u), str(v)] for u, v in obj.graph.edges
            ),
        }
        if obj.has_heterogeneous_costs():
            doc["costs"] = {
                str(v): _hex(obj.cost_multiplier(v)) for v in nodes
            }
        return ["dag", doc]
    if isinstance(obj, Mapping):
        return {str(k): canonical_payload(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)) or (
        isinstance(obj, Sequence) and not isinstance(obj, (str, bytes))
    ):
        return [canonical_payload(v) for v in obj]
    raise TypeError(
        f"no canonical form for {type(obj).__name__!r}; pass model objects "
        f"(Platform, TaskChain, WorkflowDAG, Schedule, CostProfile) or "
        f"JSON-style composites of them"
    )


def canonical_hash(obj: Any) -> str:
    """Stable SHA-256 hex digest of ``obj``'s canonical payload.

    >>> from repro.platforms import HERA
    >>> canonical_hash(HERA) == canonical_hash(HERA.with_overrides())
    True
    >>> canonical_hash({"a": 1, "b": 2}) == canonical_hash({"b": 2, "a": 1})
    True
    """
    payload = [CANONICAL_HASH_VERSION, canonical_payload(obj)]
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
