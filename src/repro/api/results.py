"""Unified result/serialization facade.

Before this module every subsystem grew its own ad-hoc ``*Result``
dataclass with its own JSON spelling (``runs`` vs ``reps`` vs
``reps_used``; ``target_ci`` vs ``target_relative_ci``; platform as a
name here and an object there).  :func:`as_document` renders any of them
into one envelope with **consistent key names**, and :func:`from_document`
inverts the supported kinds:

.. code-block:: json

    {
        "schema_version": 1,
        "kind": "solution",
        "platform": "Hera",
        ...
    }

Canonical key vocabulary (used by every document, the CLI ``--json``
output and every ``repro serve`` endpoint):

==================  ====================================================
``platform``        platform *name* string (full parameters only under
                    ``platform_params``)
``reps``            replication count of any Monte-Carlo campaign
``mean``            sample mean (seconds)
``ci_low/ci_high``  confidence-interval bounds on the mean (``null``
                    encodes an unbounded side, RFC-8259 has no ``inf``)
``expected_time``   analytic expected makespan (seconds)
``target_ci``       requested relative CI half-width
``seed``            the campaign/search seed actually consumed
``backend``         array-API backend name the kernel ran on
``order``           serialisation order, task names as strings
``schedule``        :meth:`repro.core.Schedule.as_dict` position lists
==================  ====================================================

Deprecated aliases (kept for one release, see ``docs/API.md``): ``runs``
and ``reps_used`` for ``reps``, ``ci`` for the ``[ci_low, ci_high]``
pair, ``target_relative_ci`` for ``target_ci``.  New consumers should
read only canonical keys.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from ..chains import TaskChain
from ..core.result import Solution
from ..core.schedule import Schedule
from ..dag.linearize import DagSolution
from ..dag.parallel import ParallelSearchResult, ParallelSolution
from ..dag.search import JoinDagSolution, SearchResult
from ..dag.workflow import WorkflowDAG, canonical_node_key
from ..exceptions import InvalidParameterError
from ..experiments.common import AgreementStamp
from ..obs import MetricsSnapshot
from ..platforms import Platform
from ..simulation.adaptive import AdaptiveResult, AdaptiveRound, StreamingMoments
from ..simulation.monte_carlo import MonteCarloResult
from ..simulation.stats import SampleSummary

__all__ = [
    "SCHEMA_VERSION",
    "as_document",
    "from_document",
    "document_kind",
    "finite_or_none",
]

#: Version stamped into every document; bump on any breaking key change.
SCHEMA_VERSION = 1


def finite_or_none(value: float) -> float | None:
    """JSON-safe float: RFC 8259 has no ``Infinity``/``NaN`` tokens, so
    non-finite values (degenerate CI bounds, missing analytics)
    serialize as ``null``."""
    return float(value) if math.isfinite(value) else None


def _none_as(value: float | None, default: float) -> float:
    return default if value is None else float(value)


def _envelope(kind: str) -> dict[str, Any]:
    return {"schema_version": SCHEMA_VERSION, "kind": kind}


def document_kind(doc: Any) -> str:
    """Validate the envelope of ``doc`` and return its ``kind``.

    Raises :class:`~repro.exceptions.InvalidParameterError` on a missing
    envelope or an unsupported ``schema_version`` (newer writers may add
    keys; they may not be read by an older schema reader).
    """
    if not isinstance(doc, dict):
        raise InvalidParameterError(
            f"result document must be a JSON object, got {type(doc).__name__}"
        )
    version = doc.get("schema_version")
    if version is None or "kind" not in doc:
        raise InvalidParameterError(
            "result document is missing its envelope "
            "('schema_version' and 'kind' fields)"
        )
    if int(version) > SCHEMA_VERSION:
        raise InvalidParameterError(
            f"result document has schema_version {version}; this release "
            f"reads up to {SCHEMA_VERSION}"
        )
    return str(doc["kind"])


# ----------------------------------------------------------------------
# per-type converters (as_document side)
# ----------------------------------------------------------------------
def _platform_doc(platform: Platform) -> dict[str, Any]:
    return {**_envelope("platform"), **platform.as_dict()}


def _chain_doc(chain: TaskChain) -> dict[str, Any]:
    return {
        **_envelope("chain"),
        "name": chain.name,
        "weights": chain.as_list(),
    }


def _schedule_doc(schedule: Schedule) -> dict[str, Any]:
    return {
        **_envelope("schedule"),
        **schedule.as_dict(),
        "placement": schedule.to_string(),
    }


def _dag_doc(dag: WorkflowDAG) -> dict[str, Any]:
    return {**_envelope("workflow_dag"), **dag.as_dict()}


def _summary_doc(summary: SampleSummary) -> dict[str, Any]:
    return {
        **_envelope("sample_summary"),
        "reps": summary.count,
        "mean": summary.mean,
        "std": summary.std,
        "minimum": summary.minimum,
        "maximum": summary.maximum,
        "median": summary.median,
        "q05": summary.q05,
        "q95": summary.q95,
        "confidence": summary.confidence,
        "ci_low": finite_or_none(summary.ci_low),
        "ci_high": finite_or_none(summary.ci_high),
    }


def _solution_doc(solution: Solution) -> dict[str, Any]:
    doc = {
        **_envelope("solution"),
        "algorithm": solution.algorithm,
        "platform": solution.platform.name,
        "platform_params": solution.platform.as_dict(),
        "chain": solution.chain.name,
        "weights": solution.chain.as_list(),
        "expected_time": solution.expected_time,
        "normalized_makespan": solution.normalized_makespan,
        "counts": dict(solution.counts()),
        "schedule": solution.schedule.as_dict(),
    }
    order = getattr(solution, "order", None)
    if order is not None:
        doc["order"] = [str(v) for v in order]
    if isinstance(solution, JoinDagSolution):
        doc["join"] = {
            "checkpointed_sources": sorted(
                (str(v) for v, d in solution.decisions.items() if d),
                key=canonical_node_key,
            ),
            "rate": solution.instance.rate,
            "C": solution.instance.C,
            "R": solution.instance.R,
        }
    return doc


def _stamp_doc(stamp: AgreementStamp) -> dict[str, Any]:
    return {
        **_envelope("agreement_stamp"),
        "platform": stamp.platform,
        "label": stamp.label,
        "expected_time": stamp.analytic,
        "mean": stamp.simulated,
        "relative_gap": finite_or_none(stamp.relative_gap),
        "reps": stamp.reps,
        "relative_half_width": finite_or_none(stamp.relative_half_width),
        "target_ci": stamp.target_ci,
        "agrees": stamp.agrees,
        "converged": stamp.converged,
        # deprecated aliases
        "analytic": stamp.analytic,
        "simulated": stamp.simulated,
    }


def _adaptive_doc(result: AdaptiveResult) -> dict[str, Any]:
    return {
        **_envelope("adaptive_result"),
        "target_ci": result.target_relative_ci,
        "confidence": result.confidence,
        "converged": result.converged,
        "reps": result.reps_used,
        "mean": result.mean,
        "relative_half_width": finite_or_none(result.relative_half_width),
        # "rounds" stays the scalar round count (the shape the CLI has
        # always emitted and SearchResult shares); the per-round log is
        # the new canonical "round_log"
        "rounds": len(result.rounds),
        "round_log": [
            {
                "index": r.index,
                "reps": r.reps,
                "total_reps": r.total_reps,
                "mean": r.mean,
                "half_width": finite_or_none(r.half_width),
                "relative_half_width": finite_or_none(r.relative_half_width),
            }
            for r in result.rounds
        ],
        "moments": {
            "count": result.moments.count,
            "mean": result.moments.mean,
            "m2": result.moments.m2,
            "minimum": finite_or_none(result.moments.minimum),
            "maximum": finite_or_none(result.moments.maximum),
        },
        "breakdown": result.breakdown_means(),
        "fail_stop_errors": result.fail_stop_errors,
        "silent_errors": result.silent_errors,
        "silent_detected": result.silent_detected,
        "silent_missed": result.silent_missed,
        "attempts": result.attempts,
        "steps": result.steps,
        "expected_time": finite_or_none(result.analytic),
        "min_runs": result.min_runs,
        "max_runs": result.max_runs,
        # deprecated aliases
        "target_relative_ci": result.target_relative_ci,
        "reps_used": result.reps_used,
    }


def _mc_doc(result: MonteCarloResult) -> dict[str, Any]:
    doc = {
        **_envelope("monte_carlo_result"),
        "reps": result.runs,
        "mean": result.mean,
        "ci_low": finite_or_none(result.summary.ci_low),
        "ci_high": finite_or_none(result.summary.ci_high),
        "summary": _summary_doc(result.summary),
        "mean_fail_stops": result.mean_fail_stops,
        "mean_silent_errors": result.mean_silent_errors,
        "expected_time": finite_or_none(result.analytic),
        "agrees": result.agrees_with_analytic,
        "relative_gap": finite_or_none(result.relative_gap),
        "breakdown": result.breakdown,
        "useful_work": finite_or_none(result.useful_work),
        "backend": result.backend,
        # deprecated aliases
        "runs": result.runs,
        "ci": [
            finite_or_none(result.summary.ci_low),
            finite_or_none(result.summary.ci_high),
        ],
        "analytic": finite_or_none(result.analytic),
    }
    # optional sub-documents are omitted, not null — the historical CLI
    # contract is "key absent" for fixed-N campaigns
    if result.convergence is not None:
        doc["convergence"] = _adaptive_doc(result.convergence)
    return doc


def _search_doc(result: SearchResult) -> dict[str, Any]:
    doc = {
        **_envelope("search_result"),
        "method": result.method,
        "seed": result.seed,
        "objective": result.algorithm,
        "starts": result.starts,
        "rounds": result.rounds,
        "orders_scored": result.orders_scored,
        "exact_evaluations": result.exact_evaluations,
        "exact_cache_hits": result.exact_cache_hits,
        "bound_evaluations": result.bound_evaluations,
        "bound_cache_hits": result.bound_cache_hits,
        "start_values": dict(result.start_values),
        "n_jobs": result.n_jobs,
        "recombined": result.recombined,
        "solution": _solution_doc(result.solution),
    }
    if result.certificate is not None:
        doc["certificate"] = _stamp_doc(result.certificate)
    if result.metrics is not None:
        doc["metrics"] = result.metrics.as_dict()
    return doc


def _parallel_solution_doc(solution: ParallelSolution) -> dict[str, Any]:
    return {
        **_envelope("parallel_solution"),
        "dag": solution.dag.name,
        "workflow": solution.dag.as_dict(),
        "platform": solution.platform.name,
        "platform_params": solution.platform.as_dict(),
        "processors": solution.processors,
        "algorithm": solution.algorithm,
        "order": [str(v) for v in solution.order],
        "assignment": {
            str(v): solution.assignment[v]
            for v in sorted(solution.assignment, key=canonical_node_key)
        },
        "expected_time": solution.expected_time,
        "worker_busy": list(solution.worker_busy),
        "worker_orders": [
            [str(v) for v in nodes] for nodes in solution.worker_orders
        ],
        "worker_schedules": [
            None if s is None else s.as_dict()
            for s in solution.worker_schedules
        ],
    }


def _parallel_search_doc(result: ParallelSearchResult) -> dict[str, Any]:
    doc = {
        **_envelope("parallel_search_result"),
        "method": result.method,
        "seed": result.seed,
        "objective": result.algorithm,
        "processors": result.processors,
        "starts": result.starts,
        "rounds": result.rounds,
        "states_priced": result.states_priced,
        "state_cache_hits": result.state_cache_hits,
        "interval_solves": result.interval_solves,
        "interval_cache_hits": result.interval_cache_hits,
        "start_values": dict(result.start_values),
        "n_jobs": result.n_jobs,
        "solution": _parallel_solution_doc(result.solution),
    }
    if result.metrics is not None:
        doc["metrics"] = result.metrics.as_dict()
    return doc


def _metrics_doc(snapshot: MetricsSnapshot) -> dict[str, Any]:
    return {**_envelope("metrics_snapshot"), **snapshot.as_dict()}


_AS_DOCUMENT: list[tuple[type[Any], Callable[[Any], dict[str, Any]]]] = [
    # subclass-sensitive: most-derived types must precede their bases
    (SearchResult, _search_doc),
    (ParallelSearchResult, _parallel_search_doc),
    (ParallelSolution, _parallel_solution_doc),
    (Solution, _solution_doc),
    (MonteCarloResult, _mc_doc),
    (AdaptiveResult, _adaptive_doc),
    (AgreementStamp, _stamp_doc),
    (SampleSummary, _summary_doc),
    (MetricsSnapshot, _metrics_doc),
    (Platform, _platform_doc),
    (TaskChain, _chain_doc),
    (Schedule, _schedule_doc),
    (WorkflowDAG, _dag_doc),
]


def as_document(obj: Any) -> dict[str, Any]:
    """Render any supported result/model object as a unified document."""
    for cls, converter in _AS_DOCUMENT:
        if isinstance(obj, cls):
            return converter(obj)
    raise InvalidParameterError(
        f"no unified document form for {type(obj).__name__!r}"
    )


# ----------------------------------------------------------------------
# from_document side
# ----------------------------------------------------------------------
def _platform_from(doc: dict[str, Any]) -> Platform:
    return Platform.from_dict(doc)


def _chain_from(doc: dict[str, Any]) -> TaskChain:
    return TaskChain(doc["weights"], name=str(doc.get("name", "")))


def _schedule_from(doc: dict[str, Any]) -> Schedule:
    return Schedule.from_dict(doc)


def _dag_from(doc: dict[str, Any]) -> WorkflowDAG:
    return WorkflowDAG.from_dict(doc)


def _summary_from(doc: dict[str, Any]) -> SampleSummary:
    return SampleSummary(
        count=int(doc["reps"]),
        mean=float(doc["mean"]),
        std=float(doc["std"]),
        minimum=float(doc["minimum"]),
        maximum=float(doc["maximum"]),
        median=float(doc["median"]),
        q05=float(doc["q05"]),
        q95=float(doc["q95"]),
        confidence=float(doc["confidence"]),
        ci_low=_none_as(doc["ci_low"], -math.inf),
        ci_high=_none_as(doc["ci_high"], math.inf),
    )


def _solution_from(doc: dict[str, Any]) -> Solution:
    chain = TaskChain(doc["weights"], name=str(doc.get("chain", "")))
    base = Solution(
        algorithm=str(doc["algorithm"]),
        chain=chain,
        platform=Platform.from_dict(doc["platform_params"]),
        expected_time=float(doc["expected_time"]),
        schedule=Schedule.from_dict(doc["schedule"]),
    )
    order = doc.get("order")
    if order is None:
        return base
    # join extras (doc["join"]) are data-only: the native JoinInstance is
    # not reconstructed, only the chain rendering of the solution is
    dag_solution = DagSolution(list(order), base)
    object.__setattr__(dag_solution, "algorithm", base.algorithm)
    return dag_solution


def _stamp_from(doc: dict[str, Any]) -> AgreementStamp:
    return AgreementStamp(
        platform=str(doc["platform"]),
        label=str(doc["label"]),
        analytic=float(doc["expected_time"]),
        simulated=float(doc["mean"]),
        relative_gap=_none_as(doc["relative_gap"], math.nan),
        reps=int(doc["reps"]),
        relative_half_width=_none_as(doc["relative_half_width"], math.inf),
        target_ci=float(doc["target_ci"]),
        agrees=bool(doc["agrees"]),
        converged=bool(doc["converged"]),
    )


def _adaptive_from(doc: dict[str, Any]) -> AdaptiveResult:
    from ..simulation.breakdown import TIME_CATEGORIES

    moments = StreamingMoments(
        count=int(doc["moments"]["count"]),
        mean=float(doc["moments"]["mean"]),
        m2=float(doc["moments"]["m2"]),
        minimum=_none_as(doc["moments"]["minimum"], math.inf),
        maximum=_none_as(doc["moments"]["maximum"], -math.inf),
    )
    reps = max(moments.count, 1)
    totals = np.asarray(
        [doc["breakdown"][c] * reps for c in TIME_CATEGORIES],
        dtype=np.float64,
    )
    return AdaptiveResult(
        target_relative_ci=float(doc["target_ci"]),
        confidence=float(doc["confidence"]),
        converged=bool(doc["converged"]),
        moments=moments,
        rounds=tuple(
            AdaptiveRound(
                index=int(r["index"]),
                reps=int(r["reps"]),
                total_reps=int(r["total_reps"]),
                mean=float(r["mean"]),
                half_width=_none_as(r["half_width"], math.inf),
                relative_half_width=_none_as(
                    r["relative_half_width"], math.inf
                ),
            )
            for r in doc["round_log"]
        ),
        category_totals=totals,
        fail_stop_errors=int(doc["fail_stop_errors"]),
        silent_errors=int(doc["silent_errors"]),
        silent_detected=int(doc["silent_detected"]),
        silent_missed=int(doc["silent_missed"]),
        attempts=int(doc["attempts"]),
        steps=int(doc["steps"]),
        analytic=_none_as(doc["expected_time"], math.nan),
        min_runs=int(doc["min_runs"]),
        max_runs=int(doc["max_runs"]),
    )


def _mc_from(doc: dict[str, Any]) -> MonteCarloResult:
    # samples are never serialized (adaptive campaigns stream moments and
    # retain none; fixed-N documents would be megabytes) — the summary
    # carries every statistic downstream code reads
    return MonteCarloResult(
        samples=np.empty(0, dtype=np.float64),
        summary=_summary_from(doc["summary"]),
        mean_fail_stops=float(doc["mean_fail_stops"]),
        mean_silent_errors=float(doc["mean_silent_errors"]),
        analytic=_none_as(doc["expected_time"], math.nan),
        breakdown=doc["breakdown"],
        convergence=(
            None
            if doc.get("convergence") is None
            else _adaptive_from(doc["convergence"])
        ),
        useful_work=_none_as(doc["useful_work"], math.nan),
        backend=str(doc["backend"]),
    )


def _search_from(doc: dict[str, Any]) -> SearchResult:
    return SearchResult(
        solution=_solution_from(doc["solution"]),
        method=str(doc["method"]),
        seed=int(doc["seed"]),
        algorithm=str(doc["objective"]),
        starts=int(doc["starts"]),
        rounds=int(doc["rounds"]),
        orders_scored=int(doc["orders_scored"]),
        exact_evaluations=int(doc["exact_evaluations"]),
        exact_cache_hits=int(doc["exact_cache_hits"]),
        bound_evaluations=int(doc["bound_evaluations"]),
        bound_cache_hits=int(doc["bound_cache_hits"]),
        start_values=dict(doc["start_values"]),
        certificate=(
            None
            if doc.get("certificate") is None
            else _stamp_from(doc["certificate"])
        ),
        n_jobs=doc["n_jobs"],
        recombined=int(doc["recombined"]),
        metrics=(
            None
            if doc.get("metrics") is None
            else MetricsSnapshot.from_dict(doc["metrics"])
        ),
    )


def _metrics_from(doc: dict[str, Any]) -> MetricsSnapshot:
    return MetricsSnapshot.from_dict(doc)


_FROM_DOCUMENT: dict[str, Callable[[dict[str, Any]], Any]] = {
    "platform": _platform_from,
    "chain": _chain_from,
    "schedule": _schedule_from,
    "workflow_dag": _dag_from,
    "sample_summary": _summary_from,
    "solution": _solution_from,
    "agreement_stamp": _stamp_from,
    "adaptive_result": _adaptive_from,
    "monte_carlo_result": _mc_from,
    "search_result": _search_from,
    "metrics_snapshot": _metrics_from,
}


def from_document(doc: dict[str, Any]) -> Any:
    """Reconstruct the object a unified document describes.

    Supported kinds: every model document plus the campaign results
    (``sample_summary``, ``solution``, ``agreement_stamp``,
    ``adaptive_result``, ``monte_carlo_result``, ``search_result``,
    ``metrics_snapshot``).  Parallel documents
    (``parallel_solution`` / ``parallel_search_result``) are emit-only:
    their native objects embed live DAG/platform state that documents
    deliberately flatten — read their keys directly.
    """
    kind = document_kind(doc)
    builder = _FROM_DOCUMENT.get(kind)
    if builder is None:
        raise InvalidParameterError(
            f"document kind {kind!r} is emit-only (no reconstruction); "
            f"supported kinds: {', '.join(sorted(_FROM_DOCUMENT))}"
        )
    try:
        return builder(doc)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(
            f"malformed {kind!r} document: {exc!r}"
        ) from exc
