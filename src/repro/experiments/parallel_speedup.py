"""Serialized vs p-processor expected makespan on generated workflows.

This driver quantifies what the p-processor scheduler
(:mod:`repro.dag.parallel`) buys over the PR-5 serialisation as the
worker count grows: for each campaign instance it searches an
(assignment, order) schedule for every ``p`` in the ladder, then
Monte-Carlo-estimates the true expected makespan of the winning plan
with the multi-worker batched engine
(:func:`repro.simulation.simulate_parallel`).

``p = 1`` *is* the serialized baseline: the parallel objective is exact
there (single epoch fold), so its surrogate equals the chain-DP optimum
and the speedups below are against the serialized chain schedule.  For
``p >= 2`` the surrogate is a Jensen lower bound on the simulated mean
(waits compose under ``max``), so the table reports both: the analytic
surrogate the search optimized and the certified MC estimate with its
standard error.

The platform defaults to the failure-intense ``stress`` platform of
:mod:`.dag_search` — on the near-failure-free Table I platforms the
commit-at-boundary synchronisation cost is negligible and the speedup
is just the classic list-scheduling one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..analysis import format_table
from ..dag.generate import campaign
from ..dag.parallel import ParallelSearchResult, search_parallel
from ..platforms import Platform
from ..simulation import simulate_parallel
from .dag_search import COMPARISON_ALGORITHM, stress_platform

__all__ = ["ParallelSpeedupResult", "run"]

#: Worker-count ladder explored per instance (trimmed under ``fast``).
PROCESSOR_LADDER = (1, 2, 4)

#: Monte-Carlo replications per (instance, p) certification.
DEFAULT_MC_RUNS = 4096


@dataclass(frozen=True)
class SpeedupRow:
    """One (instance, p) cell of the sweep."""

    instance: str
    n: int
    processors: int
    surrogate: float  #: analytic value the search optimized (lower bound)
    mc_mean: float  #: simulated expected makespan
    mc_sem: float  #: standard error of the MC mean
    speedup: float  #: serialized MC mean / this MC mean
    states_priced: int

    def as_dict(self) -> dict:
        return {
            "instance": self.instance,
            "n": self.n,
            "processors": self.processors,
            "surrogate": self.surrogate,
            "mc_mean": self.mc_mean,
            "mc_sem": self.mc_sem,
            "speedup": self.speedup,
            "states_priced": self.states_priced,
        }


@dataclass(frozen=True)
class ParallelSpeedupResult:
    """The p-scaling sweep over one campaign."""

    platform: str
    seed: int
    algorithm: str
    campaign: str
    mc_runs: int
    rows: list[SpeedupRow] = field(default_factory=list)

    def ladder(self) -> tuple[int, ...]:
        return tuple(sorted({row.processors for row in self.rows}))

    def mean_speedup(self, processors: int) -> float:
        """Geometric-mean MC speedup at ``processors`` over the campaign."""
        logs = [
            math.log(row.speedup)
            for row in self.rows
            if row.processors == processors and row.speedup > 0.0
        ]
        return math.exp(sum(logs) / len(logs)) if logs else 1.0

    def wins(self, processors: int) -> tuple[int, int]:
        """``(wins, total)``: instances where p workers beat serialized."""
        rows = [r for r in self.rows if r.processors == processors]
        return sum(1 for r in rows if r.speedup > 1.0), len(rows)

    def render(self) -> str:
        table = format_table(
            ["instance", "n", "p", "surrogate", "MC mean", "sem", "speedup"],
            [
                [
                    row.instance,
                    row.n,
                    row.processors,
                    f"{row.surrogate:.2f}",
                    f"{row.mc_mean:.2f}",
                    f"{row.mc_sem:.2f}",
                    f"{row.speedup:.3f}x",
                ]
                for row in self.rows
            ],
            title=(
                f"parallel speedup — {self.campaign} campaign on "
                f"{self.platform} ({self.algorithm}, seed {self.seed}, "
                f"{self.mc_runs} MC runs per cell)"
            ),
        )
        summary = []
        for p in self.ladder():
            if p == 1:
                continue
            won, total = self.wins(p)
            summary.append(
                f"p={p}: beats serialized on {won}/{total} instances, "
                f"geometric-mean speedup {self.mean_speedup(p):.3f}x"
            )
        return "\n".join([table, *summary])

    def as_dict(self) -> dict:
        return {
            "platform": self.platform,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "campaign": self.campaign,
            "mc_runs": self.mc_runs,
            "rows": [row.as_dict() for row in self.rows],
            "mean_speedup": {
                str(p): self.mean_speedup(p) for p in self.ladder() if p != 1
            },
            "wins": {
                str(p): self.wins(p)[0] for p in self.ladder() if p != 1
            },
        }


def _certify(
    result: ParallelSearchResult,
    platform: Platform,
    *,
    seed: int,
    n_runs: int,
    backend: str | None,
) -> tuple[float, float]:
    """``(mean, sem)`` of the plan's makespan under the batched engine."""
    batch = simulate_parallel(
        result.solution.plan(),
        platform,
        n_runs,
        seed=seed,
        backend=backend,
    )
    makespans = np.asarray(batch.makespans)
    mean = float(makespans.mean())
    sem = float(makespans.std(ddof=1) / math.sqrt(len(makespans)))
    return mean, sem


def run(
    *,
    fast: bool = True,
    seed: int = 0,
    platform: Platform | None = None,
    campaign_name: str = "default",
    processors: tuple[int, ...] = PROCESSOR_LADDER,
    mc_runs: int | None = None,
    backend: str | None = None,
) -> ParallelSpeedupResult:
    """Run the sweep; ``fast`` trims instances, ladder and MC budget."""
    platform = platform or stress_platform()
    dags = campaign(campaign_name, seed=seed)
    ladder = tuple(processors)
    if 1 not in ladder:
        ladder = (1, *ladder)  # the serialized baseline anchors speedups
    if fast:
        dags = dags[:3]
        ladder = tuple(p for p in ladder if p <= 2)
    n_runs = mc_runs if mc_runs is not None else (
        1024 if fast else DEFAULT_MC_RUNS
    )
    search_options = {"restarts": 1, "max_rounds": 30} if fast else {}

    rows: list[SpeedupRow] = []
    for dag in dags:
        baseline_mean: float | None = None
        for p in ladder:
            found = search_parallel(
                dag,
                platform,
                p,
                algorithm=COMPARISON_ALGORITHM,
                seed=seed,
                **search_options,
            )
            mean, sem = _certify(
                found, platform, seed=seed, n_runs=n_runs, backend=backend
            )
            if baseline_mean is None:
                baseline_mean = mean  # ladder starts at p=1
            rows.append(
                SpeedupRow(
                    instance=dag.name,
                    n=dag.n,
                    processors=p,
                    surrogate=found.expected_time,
                    mc_mean=mean,
                    mc_sem=sem,
                    speedup=baseline_mean / mean,
                    states_priced=found.states_priced,
                )
            )

    return ParallelSpeedupResult(
        platform=platform.name,
        seed=seed,
        algorithm=COMPARISON_ALGORITHM,
        campaign=campaign_name,
        mc_runs=n_runs,
        rows=rows,
    )
