"""Figure 5 — Uniform pattern on all four platforms.

Column 1 of the paper's figure: normalized makespan versus number of tasks
for ``ADV*``, ``ADMV*`` and ``ADMV``.  Columns 2-4: numbers of disk
checkpoints, memory checkpoints, guaranteed verifications (and partial
verifications for ``ADMV``) placed by each algorithm.

The expected shapes (asserted in EXPERIMENTS.md):

* makespan decreases then flattens as ``n`` grows (small ``n`` ⇒ huge
  re-execution cost per error);
* ``ADMV <= ADMV* <= ADV*`` for every platform and every ``n``;
* partial verifications only appear for large ``n``;
* the two-level gain at ``n = 50`` is ≈2% on Hera and ≈5% on Atlas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.ascii_plot import line_chart
from ..analysis.sweep import SweepResult, sweep_task_counts
from ..analysis.tables import format_table
from ..analysis.metrics import improvement
from ..chains import make_chain
from ..platforms import Platform
from .common import (
    ALGORITHM_LABELS,
    PAPER_ALGORITHMS,
    PAPER_PLATFORMS,
    AgreementStamp,
    certify_solution,
    render_stamps,
    task_grid,
)

__all__ = ["Fig5Result", "run"]


@dataclass
class Fig5Result:
    """One sweep per platform, Uniform pattern."""

    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    pattern: str = "uniform"
    stamps: list[AgreementStamp] = field(default_factory=list)

    def makespan_table(self, platform_name: str) -> str:
        sweep = self.sweeps[platform_name]
        header = ["n"] + [ALGORITHM_LABELS[a] for a in sweep.algorithms]
        return format_table(
            header,
            sweep.rows(),
            title=f"Figure 5 (makespan) — {platform_name}, {self.pattern}",
        )

    def counts_table(self, platform_name: str, algorithm: str) -> str:
        sweep = self.sweeps[platform_name]
        header = ["n", "#disk", "#memory", "#guaranteed", "#partial"]
        rows = []
        for n in sweep.task_counts:
            c = sweep.record(n, algorithm).counts
            rows.append([n, c.disk, c.memory, c.guaranteed, c.partial])
        return format_table(
            header,
            rows,
            title=(
                f"Figure 5 (counts) — {ALGORITHM_LABELS[algorithm]} on "
                f"{platform_name}, {self.pattern}"
            ),
        )

    def chart(self, platform_name: str) -> str:
        sweep = self.sweeps[platform_name]
        series = {
            ALGORITHM_LABELS[a]: sweep.makespan_series(a)
            for a in sweep.algorithms
        }
        return line_chart(
            series,
            title=f"Normalized makespan — {platform_name} ({self.pattern})",
            x_label="number of tasks",
        )

    def two_level_gain(self, platform_name: str, n: int = 50) -> float:
        """Improvement of ``ADMV*`` over ``ADV*`` at ``n`` tasks."""
        sweep = self.sweeps[platform_name]
        n = n if n in sweep.task_counts else sweep.task_counts[-1]
        return improvement(
            sweep.record(n, "adv_star").solution,
            sweep.record(n, "admv_star").solution,
        )

    def partial_gain(self, platform_name: str, n: int = 50) -> float:
        """Improvement of ``ADMV`` over ``ADMV*`` at ``n`` tasks."""
        sweep = self.sweeps[platform_name]
        n = n if n in sweep.task_counts else sweep.task_counts[-1]
        return improvement(
            sweep.record(n, "admv_star").solution,
            sweep.record(n, "admv").solution,
        )

    def render(self) -> str:
        blocks: list[str] = []
        for name, sweep in self.sweeps.items():
            blocks.append(self.chart(name))
            blocks.append(self.makespan_table(name))
            for alg in sweep.algorithms:
                blocks.append(self.counts_table(name, alg))
            blocks.append(
                f"gain ADMV* vs ADV* at n=max: {self.two_level_gain(name):+.2%}; "
                f"gain ADMV vs ADMV*: {self.partial_gain(name):+.2%}"
            )
        blocks.append(render_stamps(self.stamps))
        return "\n\n".join(blocks)


def run(
    *,
    fast: bool = True,
    platforms: tuple[Platform, ...] = PAPER_PLATFORMS,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    task_counts: list[int] | None = None,
    certify: bool = True,
) -> Fig5Result:
    """Run the Figure 5 sweeps (Uniform pattern, all platforms).

    With ``certify`` (default) the headline cell of every sweep — each
    algorithm at the largest task count — is replayed through the adaptive
    Monte-Carlo orchestrator and the agreement stamp rides in the
    rendering.
    """
    grid = task_counts if task_counts is not None else task_grid(fast)
    result = Fig5Result()
    for platform in platforms:
        sweep = sweep_task_counts(
            platform,
            pattern="uniform",
            task_counts=grid,
            algorithms=algorithms,
        )
        result.sweeps[platform.name] = sweep
        if certify:
            n_max = sweep.task_counts[-1]
            chain = make_chain("uniform", n_max)
            for alg in sweep.algorithms:
                result.stamps.append(
                    certify_solution(
                        chain,
                        platform,
                        sweep.record(n_max, alg).solution,
                        label=f"uniform n={n_max} {ALGORITHM_LABELS[alg]}",
                    )
                )
    return result
