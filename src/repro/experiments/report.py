"""Paper-vs-measured report generator (the EXPERIMENTS.md backbone).

For every table and figure of the paper this module runs the corresponding
experiment driver, extracts the quantitative claims the paper makes about
it, and renders a Markdown section juxtaposing *paper claim* and *measured
value* with a pass/fail verdict.  ``repro report`` (or
:func:`generate_report`) writes the full document.

The claims are *shape* claims (who wins, by roughly what factor, where
behaviour changes) — the paper's absolute makespans depend on the authors'
implementation details, but every comparative statement should reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_markdown_table
from . import fig5, fig6, fig78, table1

__all__ = ["Claim", "generate_report", "evaluate_claims"]


@dataclass(frozen=True)
class Claim:
    """One quantitative claim of the paper, checked against a measurement."""

    experiment: str
    claim: str
    measured: str
    holds: bool


def _fig5_claims(result: fig5.Fig5Result) -> list[Claim]:
    claims: list[Claim] = []
    hera_gain = result.two_level_gain("Hera", n=50)
    claims.append(
        Claim(
            "Figure 5",
            "ADMV* improves on ADV* by ~2% on Hera at n=50",
            f"{hera_gain:+.2%}",
            0.005 <= hera_gain <= 0.05,
        )
    )
    atlas_gain = result.two_level_gain("Atlas", n=50)
    claims.append(
        Claim(
            "Figure 5",
            "ADMV* improves on ADV* by ~5% on Atlas at n=50",
            f"{atlas_gain:+.2%}",
            0.02 <= atlas_gain <= 0.10,
        )
    )
    ordering = True
    for name, sweep in result.sweeps.items():
        for n in sweep.task_counts:
            v1 = sweep.record(n, "adv_star").normalized_makespan
            v2 = sweep.record(n, "admv_star").normalized_makespan
            v3 = sweep.record(n, "admv").normalized_makespan
            ordering &= v3 <= v2 * (1 + 1e-12) <= v1 * (1 + 1e-12)
    claims.append(
        Claim(
            "Figure 5",
            "ADMV <= ADMV* <= ADV* on every platform and task count",
            "holds everywhere" if ordering else "VIOLATED",
            ordering,
        )
    )
    small_n_penalty = all(
        dict(sweep.makespan_series("admv"))[1]
        == max(dict(sweep.makespan_series("admv")).values())
        for sweep in result.sweeps.values()
    )
    claims.append(
        Claim(
            "Figure 5",
            "small task counts suffer the largest overhead (curves decrease)",
            "n=1 is the worst point on every platform"
            if small_n_penalty
            else "VIOLATED",
            small_n_penalty,
        )
    )
    ssd_gain = result.partial_gain("Coastal SSD", n=50)
    claims.append(
        Claim(
            "Figure 5",
            "partial verifications give ~1% extra on Coastal SSD at n=50",
            f"{ssd_gain:+.2%}",
            0.001 <= ssd_gain <= 0.05,
        )
    )
    return claims


def _fig6_claims(result: fig6.Fig6Result) -> list[Claim]:
    claims: list[Claim] = []
    no_extra_disk = all(
        sol.counts().disk == 1 for sol in result.solutions.values()
    )
    claims.append(
        Claim(
            "Figure 6",
            "no disk checkpoints beyond the final mandatory one",
            "1 disk checkpoint on all 4 platforms"
            if no_extra_disk
            else "VIOLATED",
            no_extra_disk,
        )
    )
    ssd = result.solutions["Coastal SSD"].counts()
    claims.append(
        Claim(
            "Figure 6",
            "Coastal SSD prefers partial over guaranteed verifications",
            f"{ssd.partial} partial vs {ssd.guaranteed} guaranteed",
            ssd.partial > ssd.guaranteed,
        )
    )
    hera = result.solutions["Hera"].counts()
    claims.append(
        Claim(
            "Figure 6",
            "Hera mixes equi-spaced memory checkpoints with partials between",
            f"{hera.memory} memory ckpts, {hera.partial} partials",
            hera.memory >= 4 and hera.partial > 0,
        )
    )
    return claims


def _fig7_claims(result: fig78.PatternFigureResult) -> list[Claim]:
    claims: list[Claim] = []
    head_only = True
    for sol in result.map_solutions.values():
        sched = sol.schedule
        protected = set(sched.memory_positions) - {sched.n}
        if protected and max(protected) > sched.n // 2:
            head_only = False
    claims.append(
        Claim(
            "Figure 7",
            "Decrease: checkpoints concentrate on the early heavy tasks",
            "all non-final memory ckpts in the first half"
            if head_only
            else "VIOLATED",
            head_only,
        )
    )
    hera = result.map_solutions["Hera"].schedule
    tail = set(range(int(hera.n * 0.8) + 1, hera.n))
    bare_tail = tail.isdisjoint(set(hera.verified_positions) - {hera.n})
    claims.append(
        Claim(
            "Figure 7",
            "Decrease: the light tail is not even worth verifying (Hera)",
            "last 20% of tasks carry no action" if bare_tail else "VIOLATED",
            bare_tail,
        )
    )
    return claims


def _fig8_claims(result: fig78.PatternFigureResult) -> list[Claim]:
    claims: list[Claim] = []
    hera = result.map_solutions["Hera"].schedule
    heavy = set(range(1, max(2, hera.n // 10) + 1))
    hera_head = len(heavy & set(hera.memory_positions))
    claims.append(
        Claim(
            "Figure 8",
            "HighLow: memory checkpoints mandatory on Hera's heavy head",
            f"{hera_head}/{len(heavy)} heavy tasks memory-checkpointed",
            hera_head >= len(heavy) - 2,
        )
    )
    ssd = result.map_solutions["Coastal SSD"].schedule
    ssd_head = len(heavy & set(ssd.memory_positions))
    claims.append(
        Claim(
            "Figure 8",
            "HighLow: Coastal SSD protects the head far more sparsely",
            f"{ssd_head} vs {hera_head} head memory ckpts",
            ssd_head < hera_head,
        )
    )
    return claims


def _table1_claims(result: table1.Table1Result) -> list[Claim]:
    rows = {r[0]: r for r in result.rows()}
    ok = (
        rows["Hera"][6] == "12.2"
        and rows["Hera"][7] == "3.4"
        and rows["Coastal"][6] == "28.8"
        and rows["Coastal"][7] == "5.8"
    )
    return [
        Claim(
            "Table I",
            "platform MTBFs match the paper prose (Hera 12.2/3.4 days, "
            "Coastal 28.8/5.8 days)",
            f"Hera {rows['Hera'][6]}/{rows['Hera'][7]}, "
            f"Coastal {rows['Coastal'][6]}/{rows['Coastal'][7]} days",
            ok,
        )
    ]


def evaluate_claims(*, fast: bool = True) -> list[Claim]:
    """Run every experiment and check every paper claim against it."""
    results = [
        table1.run(),
        fig5.run(fast=fast),
        fig6.run(n=50),
        fig78.run_fig7(fast=fast),
        fig78.run_fig8(fast=fast),
    ]
    t1, f5, f6, f7, f8 = results
    claims: list[Claim] = []
    claims += _table1_claims(t1)
    claims += _fig5_claims(f5)
    claims += _fig6_claims(f6)
    claims += _fig7_claims(f7)
    claims += _fig8_claims(f8)

    stamps = [s for r in results for s in r.stamps]
    agreeing = sum(s.agrees for s in stamps)
    claims.append(
        Claim(
            "All artefacts",
            "simulated makespans agree with the analytic model at "
            "adaptively certified ±1% precision (Monte-Carlo stamp)",
            f"{agreeing}/{len(stamps)} stamped solutions agree",
            bool(stamps) and agreeing == len(stamps),
        )
    )
    return claims


def generate_report(*, fast: bool = True) -> str:
    """Markdown paper-vs-measured report over all tables and figures."""
    claims = evaluate_claims(fast=fast)
    held = sum(c.holds for c in claims)
    lines = [
        "# Paper-vs-measured report",
        "",
        f"{held}/{len(claims)} quantitative claims reproduce.",
        "",
        format_markdown_table(
            ["experiment", "paper claim", "measured", "verdict"],
            [
                [c.experiment, c.claim, c.measured, "PASS" if c.holds else "FAIL"]
                for c in claims
            ],
        ),
    ]
    return "\n".join(lines)
