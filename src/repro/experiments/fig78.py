"""Figures 7 and 8 — Decrease and HighLow patterns on Hera and Coastal SSD.

Each figure has three columns in the paper:

1. normalized makespan versus ``n`` for the three algorithms;
2. placement counts of ``ADMV`` versus ``n``;
3. the placement map of the ``ADMV`` solution at ``n = 50``.

Figure 7 uses the quadratically decreasing pattern (the early, heavy tasks
get the protection; the light tail is barely verified).  Figure 8 uses the
HighLow pattern (10% heavy head holding 60% of the weight: memory
checkpoints become mandatory on the head on Hera, sparser on Coastal SSD
where ``C_M`` is expensive).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.ascii_plot import line_chart, placement_diagram
from ..analysis.sweep import SweepResult, sweep_task_counts
from ..analysis.tables import format_table
from ..chains import make_chain
from ..platforms import Platform
from ..core.result import Solution
from ..core.solver import optimize
from .common import (
    ALGORITHM_LABELS,
    EXTREME_PLATFORMS,
    PAPER_ALGORITHMS,
    AgreementStamp,
    certify_solution,
    render_stamps,
    task_grid,
)

__all__ = ["PatternFigureResult", "run_fig7", "run_fig8", "run_pattern_figure"]


@dataclass
class PatternFigureResult:
    """Sweeps + n=50 placement maps for one workload pattern."""

    figure: str
    pattern: str
    n_map: int
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    map_solutions: dict[str, Solution] = field(default_factory=dict)
    stamps: list[AgreementStamp] = field(default_factory=list)

    def makespan_table(self, platform_name: str) -> str:
        sweep = self.sweeps[platform_name]
        header = ["n"] + [ALGORITHM_LABELS[a] for a in sweep.algorithms]
        return format_table(
            header,
            sweep.rows(),
            title=(
                f"{self.figure} (makespan) — {platform_name}, {self.pattern}"
            ),
        )

    def counts_table(self, platform_name: str, algorithm: str = "admv") -> str:
        sweep = self.sweeps[platform_name]
        header = ["n", "#disk", "#memory", "#guaranteed", "#partial"]
        rows = []
        for n in sweep.task_counts:
            c = sweep.record(n, algorithm).counts
            rows.append([n, c.disk, c.memory, c.guaranteed, c.partial])
        return format_table(
            header,
            rows,
            title=(
                f"{self.figure} (counts) — {ALGORITHM_LABELS[algorithm]} on "
                f"{platform_name}, {self.pattern}"
            ),
        )

    def chart(self, platform_name: str) -> str:
        sweep = self.sweeps[platform_name]
        series = {
            ALGORITHM_LABELS[a]: sweep.makespan_series(a)
            for a in sweep.algorithms
        }
        return line_chart(
            series,
            title=(
                f"Normalized makespan — {platform_name} ({self.pattern})"
            ),
            x_label="number of tasks",
        )

    def diagram(self, platform_name: str) -> str:
        sol = self.map_solutions[platform_name]
        return placement_diagram(
            sol.schedule,
            title=(
                f"Platform {platform_name} with ADMV and n={self.n_map} "
                f"({self.pattern}) — E[T]={sol.expected_time:.0f}s"
            ),
        )

    def render(self) -> str:
        blocks: list[str] = []
        for name in self.sweeps:
            blocks.append(self.chart(name))
            blocks.append(self.makespan_table(name))
            blocks.append(self.counts_table(name))
            blocks.append(self.diagram(name))
        blocks.append(render_stamps(self.stamps))
        return "\n\n".join(blocks)


def run_pattern_figure(
    figure: str,
    pattern: str,
    *,
    fast: bool = True,
    platforms: tuple[Platform, ...] = EXTREME_PLATFORMS,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    task_counts: list[int] | None = None,
    n_map: int = 50,
    certify: bool = True,
) -> PatternFigureResult:
    """Generic driver behind Figures 7 and 8.

    With ``certify`` (default) every platform's ``n_map`` placement-map
    solution is certified by an adaptive Monte-Carlo replay and the
    agreement stamp rides in the rendering.
    """
    grid = task_counts if task_counts is not None else task_grid(fast)
    result = PatternFigureResult(figure=figure, pattern=pattern, n_map=n_map)
    map_chain = make_chain(pattern, n_map)
    for platform in platforms:
        result.sweeps[platform.name] = sweep_task_counts(
            platform,
            pattern=pattern,
            task_counts=grid,
            algorithms=algorithms,
        )
        solution = optimize(map_chain, platform, algorithm="admv")
        result.map_solutions[platform.name] = solution
        if certify:
            result.stamps.append(
                certify_solution(
                    map_chain,
                    platform,
                    solution,
                    label=f"{pattern} n={n_map} ADMV",
                )
            )
    return result


def run_fig7(**kwargs) -> PatternFigureResult:
    """Figure 7: Decrease pattern on Hera and Coastal SSD."""
    return run_pattern_figure("Figure 7", "decrease", **kwargs)


def run_fig8(**kwargs) -> PatternFigureResult:
    """Figure 8: HighLow pattern on Hera and Coastal SSD."""
    return run_pattern_figure("Figure 8", "highlow", **kwargs)
