"""Experiment drivers regenerating every table and figure of the paper.

==========  ==========================================  ====================
paper item  content                                     driver
==========  ==========================================  ====================
Table I     platform parameters                         :func:`table1.run`
Figure 5    Uniform: makespan + counts, 4 platforms     :func:`fig5.run`
Figure 6    ADMV placement maps at n=50, 4 platforms    :func:`fig6.run`
Figure 7    Decrease: Hera & Coastal SSD                :func:`fig78.run_fig7`
Figure 8    HighLow: Hera & Coastal SSD                 :func:`fig78.run_fig8`
==========  ==========================================  ====================

Beyond the paper, :mod:`.dag_search` compares the fixed linearization
heuristics, the metaheuristic order search and (where feasible) the
exhaustive optimum over generated workflows (``repro dag sweep``), and
:mod:`.parallel_speedup` sweeps the p-processor scheduler against the
serialized baseline as the worker count grows.
"""

from . import dag_search, fig5, fig6, fig78, parallel_speedup, report, table1
from .common import (
    ALGORITHM_LABELS,
    EXTREME_PLATFORMS,
    PAPER_ALGORITHMS,
    PAPER_PLATFORMS,
    task_grid,
)

__all__ = [
    "dag_search",
    "parallel_speedup",
    "fig5",
    "fig6",
    "report",
    "fig78",
    "table1",
    "ALGORITHM_LABELS",
    "EXTREME_PLATFORMS",
    "PAPER_ALGORITHMS",
    "PAPER_PLATFORMS",
    "task_grid",
]
