"""Shared plumbing for the paper-figure experiment drivers.

Every experiment module exposes ``run(...) -> <Result>`` and the result
knows how to render itself to text (``render()``), so CLI, benches and
EXPERIMENTS.md generation all share one code path.

``fast`` mode uses a coarser task grid (the ``ADMV`` DP is ``O(n^5)``; the
full 1..50 grid over four platforms is a couple of minutes, the fast grid a
few seconds) — figure *shapes* are preserved either way.

Every regenerated artefact additionally carries a **Monte-Carlo agreement
stamp**: the headline solutions are replayed through the adaptive
fault-injection orchestrator until the sample mean is certified to a
target precision, and the analytic-vs-simulated agreement is appended to
the rendering (:func:`certify_solution` / :func:`render_stamps`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.sweep import default_task_grid
from ..chains import TaskChain
from ..core.result import Solution
from ..platforms import TABLE1_ROWS, Platform

__all__ = [
    "PAPER_ALGORITHMS",
    "PAPER_PLATFORMS",
    "EXTREME_PLATFORMS",
    "task_grid",
    "ALGORITHM_LABELS",
    "AgreementStamp",
    "STAMP_TARGET_CI",
    "certify_solution",
    "render_stamps",
]

#: Relative CI half-width every agreement stamp certifies (±1%).
STAMP_TARGET_CI = 0.01

#: The three algorithms compared throughout Section IV.
PAPER_ALGORITHMS: tuple[str, ...] = ("adv_star", "admv_star", "admv")

#: Display names matching the paper's legends.
ALGORITHM_LABELS: dict[str, str] = {
    "adv_star": "ADV*",
    "admv_star": "ADMV*",
    "admv": "ADMV",
}

#: All four Table I platforms (Figure 5 / Figure 6).
PAPER_PLATFORMS: tuple[Platform, ...] = TABLE1_ROWS

#: The two extreme platforms used for Figures 7 and 8.
EXTREME_PLATFORMS: tuple[Platform, ...] = (TABLE1_ROWS[0], TABLE1_ROWS[3])


def task_grid(fast: bool) -> list[int]:
    """Task-count grid: paper-dense when ``fast`` is False."""
    return default_task_grid(50, 10) if fast else default_task_grid(50, 5)


@dataclass(frozen=True)
class AgreementStamp:
    """Analytic-vs-simulated certification of one headline solution."""

    platform: str
    label: str  #: instance description, e.g. ``"uniform n=50 ADMV"``
    analytic: float  #: DP/Markov expected makespan (s)
    simulated: float  #: certified sample mean makespan (s)
    relative_gap: float
    reps: int  #: replications the adaptive campaign spent
    relative_half_width: float  #: certified precision (CI half-width / mean)
    target_ci: float
    agrees: bool  #: analytic value inside the certified CI
    converged: bool

    def line(self) -> str:
        mark = "ok " if self.agrees else "FAIL"
        tail = "" if self.converged else " [cap hit before target]"
        return (
            f"  [{mark}] {self.platform:12s} {self.label:22s} "
            f"analytic={self.analytic:12.2f}s "
            f"simulated={self.simulated:12.2f}s "
            f"±{self.relative_half_width:.2%} "
            f"({self.reps} reps, gap {self.relative_gap:+.3%}){tail}"
        )


def certify_solution(
    chain: TaskChain,
    platform: Platform,
    solution: Solution,
    *,
    label: str,
    target_ci: float = STAMP_TARGET_CI,
    seed: int = 0,
    backend: str | None = None,
    max_runs: int = 1_000_000,
    costs=None,
) -> AgreementStamp:
    """Replay ``solution`` adaptively and stamp its analytic agreement.

    ``backend`` selects the array-API backend the batched campaign runs on
    (``None`` = the ``REPRO_BACKEND`` / NumPy default); ``max_runs`` caps
    the adaptive spend; ``costs`` prices a heterogeneous per-task
    :class:`~repro.core.costs.CostProfile` in the simulated campaign (it
    must match the profile the analytic value was computed with).
    """
    from ..simulation import run_monte_carlo

    mc = run_monte_carlo(
        chain,
        platform,
        solution.schedule,
        runs=max_runs,
        seed=seed,
        analytic=solution.expected_time,
        target_ci=target_ci,
        backend=backend,
        costs=costs,
    )
    adaptive = mc.convergence
    return AgreementStamp(
        platform=platform.name,
        label=label,
        analytic=solution.expected_time,
        simulated=mc.mean,
        relative_gap=mc.relative_gap,
        reps=mc.runs,
        relative_half_width=adaptive.relative_half_width,
        target_ci=target_ci,
        agrees=mc.agrees_with_analytic,
        converged=adaptive.converged,
    )


def render_stamps(stamps: list[AgreementStamp]) -> str:
    """The agreement-stamp block appended to every artefact rendering."""
    if not stamps:
        return "Monte-Carlo agreement stamp: not certified"
    all_ok = all(s.agrees for s in stamps)
    target = stamps[0].target_ci
    lines = [
        f"Monte-Carlo agreement stamp (adaptive, target ±{target:.1%}): "
        f"{'ALL AGREE' if all_ok else 'DISAGREEMENT'}"
    ]
    lines.extend(s.line() for s in stamps)
    return "\n".join(lines)
