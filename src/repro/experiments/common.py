"""Shared plumbing for the paper-figure experiment drivers.

Every experiment module exposes ``run(...) -> <Result>`` and the result
knows how to render itself to text (``render()``), so CLI, benches and
EXPERIMENTS.md generation all share one code path.

``fast`` mode uses a coarser task grid (the ``ADMV`` DP is ``O(n^5)``; the
full 1..50 grid over four platforms is a couple of minutes, the fast grid a
few seconds) — figure *shapes* are preserved either way.
"""

from __future__ import annotations

from ..analysis.sweep import default_task_grid
from ..platforms import TABLE1_ROWS, Platform

__all__ = [
    "PAPER_ALGORITHMS",
    "PAPER_PLATFORMS",
    "EXTREME_PLATFORMS",
    "task_grid",
    "ALGORITHM_LABELS",
]

#: The three algorithms compared throughout Section IV.
PAPER_ALGORITHMS: tuple[str, ...] = ("adv_star", "admv_star", "admv")

#: Display names matching the paper's legends.
ALGORITHM_LABELS: dict[str, str] = {
    "adv_star": "ADV*",
    "admv_star": "ADMV*",
    "admv": "ADMV",
}

#: All four Table I platforms (Figure 5 / Figure 6).
PAPER_PLATFORMS: tuple[Platform, ...] = TABLE1_ROWS

#: The two extreme platforms used for Figures 7 and 8.
EXTREME_PLATFORMS: tuple[Platform, ...] = (TABLE1_ROWS[0], TABLE1_ROWS[3])


def task_grid(fast: bool) -> list[int]:
    """Task-count grid: paper-dense when ``fast`` is False."""
    return default_task_grid(50, 10) if fast else default_task_grid(50, 5)
