"""Heuristics vs metaheuristic search vs exhaustive on generated workflows.

This driver quantifies what the order-search subsystem buys over the fixed
linearization heuristics (paper §V poses the problem; the repo's answer is
:mod:`repro.dag.search`):

* on the ``small`` campaign (n <= 8) every topological order can be
  enumerated, so the table reports whether search recovers the *exact*
  optimum over orders;
* on the ``default`` campaign (n >= 20) enumeration is hopeless — search
  is compared against the best fixed heuristic, reporting the makespan
  gain and the evaluation-work accounting.

The default platform is deliberately failure-intense: on the Table I
platforms the optimal schedules verify almost every task, which makes the
expected makespan nearly order-insensitive (gains < 0.01%); with
per-task failure odds of ~10% the serialisation order genuinely matters.
The winning search order of the first campaign instance is certified with
an adaptive Monte-Carlo agreement stamp (the array-API ``backend=`` is
threaded through to the batched engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import format_table
from ..dag.generate import campaign
from ..dag.linearize import optimize_dag
from ..dag.search import SearchResult, search_order
from ..platforms import Platform
from .common import AgreementStamp, certify_solution, render_stamps

__all__ = ["DagSearchResult", "run", "stress_platform"]

#: Algorithm used throughout the comparison: the two-level DP is a good
#: speed/quality compromise for the many exact solves a search performs.
COMPARISON_ALGORITHM = "admv_star"


def stress_platform() -> Platform:
    """A failure-intense platform where serialisation order matters."""
    return Platform.from_costs(
        "stress", lf=3e-4, ls=8e-4, CD=60.0, CM=10.0, r=0.8
    )


@dataclass(frozen=True)
class DagSearchResult:
    """Comparison tables plus the certification stamp."""

    platform: str
    seed: int
    algorithm: str
    #: instance -> (n, exhaustive, best-heuristic, search, recovered?)
    small_rows: list[tuple[str, int, float, float, float, bool]]
    #: instance -> (n, best-heuristic, search, relative gain, won?, scored)
    campaign_rows: list[tuple[str, int, float, float, float, bool, int]]
    stamps: list[AgreementStamp] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        return all(row[5] for row in self.small_rows)

    @property
    def campaign_wins(self) -> int:
        return sum(1 for row in self.campaign_rows if row[5])

    def render(self) -> str:
        small = format_table(
            ["instance", "n", "exhaustive", "best heur", "search", "exact?"],
            [
                [name, n, f"{exh:.2f}", f"{heur:.2f}", f"{search:.2f}",
                 "yes" if ok else "NO"]
                for name, n, exh, heur, search, ok in self.small_rows
            ],
            title=(
                f"small campaign — search vs exhaustive optimum "
                f"({self.platform}, {self.algorithm}, seed {self.seed})"
            ),
        )
        big = format_table(
            ["instance", "n", "best heur", "search", "gain", "win?", "scored"],
            [
                [name, n, f"{heur:.2f}", f"{search:.2f}", f"{gain:+.3%}",
                 "yes" if won else "no", scored]
                for name, n, heur, search, gain, won, scored in self.campaign_rows
            ],
            title=(
                f"default campaign — search vs fixed heuristics "
                f"(search wins {self.campaign_wins}/{len(self.campaign_rows)})"
            ),
        )
        return "\n\n".join([small, big, render_stamps(self.stamps)])

    def as_dict(self) -> dict:
        return {
            "platform": self.platform,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "small": [
                {
                    "instance": name,
                    "n": n,
                    "exhaustive": exh,
                    "best_heuristic": heur,
                    "search": search,
                    "recovered_optimum": ok,
                }
                for name, n, exh, heur, search, ok in self.small_rows
            ],
            "campaign": [
                {
                    "instance": name,
                    "n": n,
                    "best_heuristic": heur,
                    "search": search,
                    "relative_gain": gain,
                    "win": won,
                    "orders_scored": scored,
                }
                for name, n, heur, search, gain, won, scored in self.campaign_rows
            ],
            "campaign_wins": self.campaign_wins,
            "all_small_recovered": self.all_recovered,
        }


def _search(dag, platform, seed, **kwargs) -> SearchResult:
    return search_order(
        dag, platform, algorithm=COMPARISON_ALGORITHM, seed=seed, **kwargs
    )


def run(
    *,
    fast: bool = True,
    seed: int = 0,
    platform: Platform | None = None,
    backend: str | None = None,
    certify: bool = True,
) -> DagSearchResult:
    """Run the full comparison; ``fast`` trims the large campaign and caps
    the exact-polish budget so the driver stays CLI-interactive."""
    platform = platform or stress_platform()

    small_rows = []
    for dag in campaign("small", seed=seed):
        exhaustive = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="all"
        )
        heuristics = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="auto"
        )
        found = _search(dag, platform, seed)
        recovered = (
            found.expected_time
            <= exhaustive.expected_time * (1.0 + 1e-9)
        )
        small_rows.append(
            (
                dag.name,
                dag.n,
                exhaustive.expected_time,
                heuristics.expected_time,
                found.expected_time,
                recovered,
            )
        )

    campaign_rows = []
    stamps: list[AgreementStamp] = []
    dags = campaign("default", seed=seed)
    if fast:
        dags = dags[:3]
    search_kwargs = {"restarts": 1, "polish_budget": 8} if fast else {}
    for index, dag in enumerate(dags):
        heuristics = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="auto"
        )
        found = _search(dag, platform, seed, **search_kwargs)
        gain = (
            heuristics.expected_time - found.expected_time
        ) / heuristics.expected_time
        won = found.expected_time < heuristics.expected_time * (1.0 - 1e-9)
        if not won and abs(gain) < 1e-9:
            gain = 0.0  # ULP-level noise between equivalent orders
        campaign_rows.append(
            (
                dag.name,
                dag.n,
                heuristics.expected_time,
                found.expected_time,
                gain,
                won,
                found.orders_scored,
            )
        )
        if certify and index == 0:
            _, chain = dag.serialise(found.solution.order)
            stamps.append(
                certify_solution(
                    chain,
                    platform,
                    found.solution,
                    label=f"{dag.name} search",
                    seed=seed,
                    backend=backend,
                )
            )

    return DagSearchResult(
        platform=platform.name,
        seed=seed,
        algorithm=COMPARISON_ALGORITHM,
        small_rows=small_rows,
        campaign_rows=campaign_rows,
        stamps=stamps,
    )
