"""Heuristics vs metaheuristic search vs exhaustive on generated workflows.

This driver quantifies what the order-search subsystem buys over the fixed
linearization heuristics (paper §V poses the problem; the repo's answer is
:mod:`repro.dag.search`):

* on the ``small`` campaign (n <= 8) every topological order can be
  enumerated, so the table reports whether search recovers the *exact*
  optimum over orders;
* on the ``default`` campaign (n >= 20) enumeration is hopeless — search
  is compared against the best fixed heuristic, reporting the makespan
  gain and the evaluation-work accounting;
* on the ``hetero`` campaign the same shapes carry strong per-task cost
  multipliers: the fixed heuristics are weight-only, so this is where
  order search earns its keep (gains of ~1% and above, an order of
  magnitude over the uniform-cost ceiling of 0.14%);
* on the ``join`` campaign the forever-vulnerable APDCM'15 objective is
  searched jointly over orders and checkpoint decisions; small instances
  are checked against ``exhaustive_join(optimize_order=True)``.

The default platform is deliberately failure-intense: on the Table I
platforms the optimal schedules verify almost every task, which makes the
expected makespan nearly order-insensitive (gains < 0.01%); with
per-task failure odds of ~10% the serialisation order genuinely matters.
The winning search orders of the first campaign and hetero instances are
certified with an adaptive Monte-Carlo agreement stamp (the array-API
``backend=`` is threaded through to the batched engine; heterogeneous
cost profiles are priced in the simulation too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import format_table
from ..dag.generate import campaign
from ..dag.join import exhaustive_join, join_from_dag, local_search_join, threshold_join
from ..dag.linearize import optimize_dag
from ..dag.search import SearchResult, search_order
from ..platforms import Platform
from .common import AgreementStamp, certify_solution, render_stamps

__all__ = ["DagSearchResult", "run", "stress_platform"]

#: Algorithm used throughout the comparison: the two-level DP is a good
#: speed/quality compromise for the many exact solves a search performs.
COMPARISON_ALGORITHM = "admv_star"


def stress_platform() -> Platform:
    """A failure-intense platform where serialisation order matters."""
    return Platform.from_costs(
        "stress", lf=3e-4, ls=8e-4, CD=60.0, CM=10.0, r=0.8
    )


@dataclass(frozen=True)
class DagSearchResult:
    """Comparison tables plus the certification stamp."""

    platform: str
    seed: int
    algorithm: str
    #: instance -> (n, exhaustive, best-heuristic, search, recovered?)
    small_rows: list[tuple[str, int, float, float, float, bool]]
    #: instance -> (n, best-heuristic, search, relative gain, won?, scored)
    campaign_rows: list[tuple[str, int, float, float, float, bool, int]]
    #: instance -> (n, best-heuristic, search, relative gain, won?, scored)
    hetero_rows: list[tuple[str, int, float, float, float, bool, int]] = field(
        default_factory=list
    )
    #: instance -> (sources, baseline, search, relative gain, optimal?)
    join_rows: list[tuple[str, int, float, float, float, bool | None]] = field(
        default_factory=list
    )
    stamps: list[AgreementStamp] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        return all(row[5] for row in self.small_rows)

    @property
    def campaign_wins(self) -> int:
        return sum(1 for row in self.campaign_rows if row[5])

    @property
    def hetero_wins(self) -> int:
        return sum(1 for row in self.hetero_rows if row[5])

    @property
    def mean_hetero_gain(self) -> float:
        if not self.hetero_rows:
            return 0.0
        return sum(row[4] for row in self.hetero_rows) / len(self.hetero_rows)

    def render(self) -> str:
        small = format_table(
            ["instance", "n", "exhaustive", "best heur", "search", "exact?"],
            [
                [name, n, f"{exh:.2f}", f"{heur:.2f}", f"{search:.2f}",
                 "yes" if ok else "NO"]
                for name, n, exh, heur, search, ok in self.small_rows
            ],
            title=(
                f"small campaign — search vs exhaustive optimum "
                f"({self.platform}, {self.algorithm}, seed {self.seed})"
            ),
        )
        big = format_table(
            ["instance", "n", "best heur", "search", "gain", "win?", "scored"],
            [
                [name, n, f"{heur:.2f}", f"{search:.2f}", f"{gain:+.3%}",
                 "yes" if won else "no", scored]
                for name, n, heur, search, gain, won, scored in self.campaign_rows
            ],
            title=(
                f"default campaign — search vs fixed heuristics "
                f"(search wins {self.campaign_wins}/{len(self.campaign_rows)})"
            ),
        )
        parts = [small, big]
        if self.hetero_rows:
            parts.append(
                format_table(
                    ["instance", "n", "best heur", "search", "gain",
                     ">=1%?", "scored"],
                    [
                        [name, n, f"{heur:.2f}", f"{search:.2f}",
                         f"{gain:+.3%}", "yes" if won else "no", scored]
                        for name, n, heur, search, gain, won, scored
                        in self.hetero_rows
                    ],
                    title=(
                        f"hetero campaign — per-task cost multipliers "
                        f"(search gains >= 1% on "
                        f"{self.hetero_wins}/{len(self.hetero_rows)}, "
                        f"mean {self.mean_hetero_gain:+.3%})"
                    ),
                )
            )
        if self.join_rows:
            parts.append(
                format_table(
                    ["instance", "sources", "baseline", "search", "gain",
                     "optimal?"],
                    [
                        [name, n, f"{base:.2f}", f"{search:.2f}",
                         f"{gain:+.3%}",
                         "yes" if opt else ("NO" if opt is not None else "n/a")]
                        for name, n, base, search, gain, opt in self.join_rows
                    ],
                    title=(
                        "join campaign — forever-vulnerable objective "
                        "(baseline = best of threshold / local search)"
                    ),
                )
            )
        parts.append(render_stamps(self.stamps))
        return "\n\n".join(parts)

    def as_dict(self) -> dict:
        return {
            "platform": self.platform,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "small": [
                {
                    "instance": name,
                    "n": n,
                    "exhaustive": exh,
                    "best_heuristic": heur,
                    "search": search,
                    "recovered_optimum": ok,
                }
                for name, n, exh, heur, search, ok in self.small_rows
            ],
            "campaign": [
                {
                    "instance": name,
                    "n": n,
                    "best_heuristic": heur,
                    "search": search,
                    "relative_gain": gain,
                    "win": won,
                    "orders_scored": scored,
                }
                for name, n, heur, search, gain, won, scored in self.campaign_rows
            ],
            "hetero": [
                {
                    "instance": name,
                    "n": n,
                    "best_heuristic": heur,
                    "search": search,
                    "relative_gain": gain,
                    "gain_at_least_1pct": won,
                    "orders_scored": scored,
                }
                for name, n, heur, search, gain, won, scored in self.hetero_rows
            ],
            "join": [
                {
                    "instance": name,
                    "sources": n,
                    "baseline": base,
                    "search": search,
                    "relative_gain": gain,
                    "matches_exhaustive": opt,
                }
                for name, n, base, search, gain, opt in self.join_rows
            ],
            "campaign_wins": self.campaign_wins,
            "hetero_wins_1pct": self.hetero_wins,
            "mean_hetero_gain": self.mean_hetero_gain,
            "all_small_recovered": self.all_recovered,
        }


def _search(dag, platform, seed, **kwargs) -> SearchResult:
    return search_order(
        dag, platform, algorithm=COMPARISON_ALGORITHM, seed=seed, **kwargs
    )


def run(
    *,
    fast: bool = True,
    seed: int = 0,
    platform: Platform | None = None,
    backend: str | None = None,
    certify: bool = True,
) -> DagSearchResult:
    """Run the full comparison; ``fast`` trims the large campaign and caps
    the exact-polish budget so the driver stays CLI-interactive."""
    platform = platform or stress_platform()

    small_rows = []
    for dag in campaign("small", seed=seed):
        exhaustive = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="all"
        )
        heuristics = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="auto"
        )
        found = _search(dag, platform, seed)
        recovered = (
            found.expected_time
            <= exhaustive.expected_time * (1.0 + 1e-9)
        )
        small_rows.append(
            (
                dag.name,
                dag.n,
                exhaustive.expected_time,
                heuristics.expected_time,
                found.expected_time,
                recovered,
            )
        )

    campaign_rows = []
    stamps: list[AgreementStamp] = []
    dags = campaign("default", seed=seed)
    if fast:
        dags = dags[:3]
    search_kwargs = {"restarts": 1, "polish_budget": 8} if fast else {}
    for index, dag in enumerate(dags):
        heuristics = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="auto"
        )
        found = _search(dag, platform, seed, **search_kwargs)
        gain = (
            heuristics.expected_time - found.expected_time
        ) / heuristics.expected_time
        won = found.expected_time < heuristics.expected_time * (1.0 - 1e-9)
        if not won and abs(gain) < 1e-9:
            gain = 0.0  # ULP-level noise between equivalent orders
        campaign_rows.append(
            (
                dag.name,
                dag.n,
                heuristics.expected_time,
                found.expected_time,
                gain,
                won,
                found.orders_scored,
            )
        )
        if certify and index == 0:
            _, chain = dag.serialise(found.solution.order)
            stamps.append(
                certify_solution(
                    chain,
                    platform,
                    found.solution,
                    label=f"{dag.name} search",
                    seed=seed,
                    backend=backend,
                )
            )

    # ------------------------------------------------------------------
    # heterogeneous-cost campaign: where order search pays off
    # ------------------------------------------------------------------
    hetero_rows = []
    hetero_dags = campaign("hetero", seed=seed)
    if fast:
        hetero_dags = hetero_dags[:3]
    for index, dag in enumerate(hetero_dags):
        heuristics = optimize_dag(
            dag, platform, algorithm=COMPARISON_ALGORITHM, strategy="auto"
        )
        found = _search(dag, platform, seed, **search_kwargs)
        gain = (
            heuristics.expected_time - found.expected_time
        ) / heuristics.expected_time
        hetero_rows.append(
            (
                dag.name,
                dag.n,
                heuristics.expected_time,
                found.expected_time,
                gain,
                gain >= 0.01,
                found.orders_scored,
            )
        )
        if certify and index == 0:
            order = found.solution.order
            _, chain = dag.serialise(order)
            stamps.append(
                certify_solution(
                    chain,
                    platform,
                    found.solution,
                    label=f"{dag.name} search",
                    seed=seed,
                    backend=backend,
                    costs=dag.cost_profile(order, platform),
                )
            )

    # ------------------------------------------------------------------
    # join campaign: forever-vulnerable objective, decisions + order
    # ------------------------------------------------------------------
    join_rows = []
    join_dags = campaign("join", seed=seed)
    if fast:
        join_dags = join_dags[:2]
    for dag in join_dags:
        instance = join_from_dag(
            dag, rate=platform.lf, C=platform.CD, R=platform.RD
        )
        baseline = min(
            threshold_join(instance)[0], local_search_join(instance)[0]
        )
        found = search_order(dag, platform, seed=seed)
        gain = (baseline - found.expected_time) / baseline
        optimal: bool | None = None
        if instance.n_sources <= 7:
            exh_value, _ = exhaustive_join(instance, optimize_order=True)
            optimal = found.expected_time <= exh_value * (1.0 + 1e-9)
        join_rows.append(
            (dag.name, instance.n_sources, baseline, found.expected_time,
             gain, optimal)
        )

    return DagSearchResult(
        platform=platform.name,
        seed=seed,
        algorithm=COMPARISON_ALGORITHM,
        small_rows=small_rows,
        campaign_rows=campaign_rows,
        hetero_rows=hetero_rows,
        join_rows=join_rows,
        stamps=stamps,
    )
