"""Table I — platform parameters.

Regenerates the paper's Table I from the catalog, including the derived
MTBFs quoted in the prose ("the Hera platform has the worst error rates,
with a platform MTBF of 12.2 days for fail-stop errors and 3.4 days for
silent errors").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..platforms import TABLE1_ROWS, Platform

__all__ = ["Table1Result", "run"]

HEADER = [
    "platform",
    "#nodes",
    "lambda_f (/s)",
    "lambda_s (/s)",
    "C_D (s)",
    "C_M (s)",
    "MTBF_f (days)",
    "MTBF_s (days)",
]


@dataclass(frozen=True)
class Table1Result:
    """Rows of Table I plus derived MTBF columns."""

    platforms: tuple[Platform, ...]

    def rows(self) -> list[list]:
        out = []
        for p in self.platforms:
            out.append(
                [
                    p.name,
                    p.nodes,
                    f"{p.lf:.2e}",
                    f"{p.ls:.2e}",
                    p.CD,
                    p.CM,
                    f"{p.mtbf_fail_stop_days:.1f}",
                    f"{p.mtbf_silent_days:.1f}",
                ]
            )
        return out

    def render(self) -> str:
        return format_table(HEADER, self.rows(), title="Table I — platform parameters")


def run() -> Table1Result:
    """Build Table I from the platform catalog."""
    return Table1Result(platforms=TABLE1_ROWS)
