"""Table I — platform parameters.

Regenerates the paper's Table I from the catalog, including the derived
MTBFs quoted in the prose ("the Hera platform has the worst error rates,
with a platform MTBF of 12.2 days for fail-stop errors and 3.4 days for
silent errors").  Each platform row is additionally stamped by replaying
the canonical ``ADMV`` solution (uniform, n = 20) through the adaptive
Monte-Carlo orchestrator — the parameters are certified to drive analytic
and simulated makespans into agreement, not just transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_table
from ..chains import uniform_chain
from ..core.solver import optimize
from ..platforms import TABLE1_ROWS, Platform
from .common import AgreementStamp, certify_solution, render_stamps

__all__ = ["Table1Result", "run"]

HEADER = [
    "platform",
    "#nodes",
    "lambda_f (/s)",
    "lambda_s (/s)",
    "C_D (s)",
    "C_M (s)",
    "MTBF_f (days)",
    "MTBF_s (days)",
]


@dataclass(frozen=True)
class Table1Result:
    """Rows of Table I plus derived MTBF columns."""

    platforms: tuple[Platform, ...]
    stamps: list[AgreementStamp] = field(default_factory=list)

    def rows(self) -> list[list]:
        out = []
        for p in self.platforms:
            out.append(
                [
                    p.name,
                    p.nodes,
                    f"{p.lf:.2e}",
                    f"{p.ls:.2e}",
                    p.CD,
                    p.CM,
                    f"{p.mtbf_fail_stop_days:.1f}",
                    f"{p.mtbf_silent_days:.1f}",
                ]
            )
        return out

    def render(self) -> str:
        table = format_table(
            HEADER, self.rows(), title="Table I — platform parameters"
        )
        return table + "\n\n" + render_stamps(self.stamps)


def run(*, certify: bool = True, certify_n: int = 20) -> Table1Result:
    """Build Table I from the platform catalog.

    With ``certify`` (default) each platform's canonical ``ADMV`` solution
    at ``certify_n`` uniform tasks is certified by an adaptive Monte-Carlo
    replay, stamping the table's parameters with a simulated agreement.
    """
    result = Table1Result(platforms=TABLE1_ROWS)
    if certify:
        chain = uniform_chain(certify_n)
        for platform in TABLE1_ROWS:
            solution = optimize(chain, platform, algorithm="admv")
            result.stamps.append(
                certify_solution(
                    chain,
                    platform,
                    solution,
                    label=f"uniform n={certify_n} ADMV",
                )
            )
    return result
