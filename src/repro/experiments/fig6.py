"""Figure 6 — placement maps of ``ADMV`` at ``n = 50``, Uniform pattern.

For each of the four platforms, shows where the optimal ``ADMV`` solution
puts disk checkpoints, memory checkpoints, guaranteed verifications and
partial verifications along the 50-task chain.

Expected shapes: no disk checkpoint other than the mandatory final one;
roughly equi-spaced memory checkpoints / guaranteed verifications with
partial verifications in-between; on Coastal SSD (expensive ``C_M``/``V*``)
partial verifications dominate over guaranteed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.ascii_plot import placement_diagram
from ..chains import uniform_chain
from ..platforms import Platform
from ..core.result import Solution
from ..core.solver import optimize
from .common import (
    PAPER_PLATFORMS,
    AgreementStamp,
    certify_solution,
    render_stamps,
)

__all__ = ["Fig6Result", "run"]


@dataclass
class Fig6Result:
    """Optimal ``ADMV`` solutions at fixed ``n``, one per platform."""

    n: int
    pattern: str
    solutions: dict[str, Solution] = field(default_factory=dict)
    stamps: list[AgreementStamp] = field(default_factory=list)

    def diagram(self, platform_name: str) -> str:
        sol = self.solutions[platform_name]
        return placement_diagram(
            sol.schedule,
            title=(
                f"Platform {platform_name} with ADMV and n={self.n} "
                f"({self.pattern}) — E[T]={sol.expected_time:.0f}s"
            ),
        )

    def render(self) -> str:
        blocks = [self.diagram(name) for name in self.solutions]
        blocks.append(render_stamps(self.stamps))
        return "\n\n".join(blocks)


def run(
    *,
    n: int = 50,
    platforms: tuple[Platform, ...] = PAPER_PLATFORMS,
    algorithm: str = "admv",
    certify: bool = True,
) -> Fig6Result:
    """Solve ``ADMV`` at ``n`` tasks (Uniform) on each platform.

    With ``certify`` (default) every placement map's expected makespan is
    certified by an adaptive Monte-Carlo replay and stamped.
    """
    chain = uniform_chain(n)
    result = Fig6Result(n=n, pattern="uniform")
    for platform in platforms:
        solution = optimize(chain, platform, algorithm=algorithm)
        result.solutions[platform.name] = solution
        if certify:
            result.stamps.append(
                certify_solution(
                    chain,
                    platform,
                    solution,
                    label=f"uniform n={n} {algorithm.upper()}",
                )
            )
    return result
