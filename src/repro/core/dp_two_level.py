"""Two-level dynamic program ``ADMV*`` (paper Section III-A).

Places disk checkpoints, memory checkpoints and guaranteed verifications (no
partial verifications) to minimise the expected makespan of a linear chain.

Three nested recurrences, all initialised at the virtual task ``T0`` (disk
checkpointed, zero recovery cost):

.. math::

    E_{disk}(d_2) &= \\min_{0 \\le d_1 < d_2}
        E_{disk}(d_1) + E_{mem}(d_1, d_2) + C_D \\\\
    E_{mem}(d_1, m_2) &= \\min_{d_1 \\le m_1 < m_2}
        E_{mem}(d_1, m_1) + E_{verif}(d_1, m_1, m_2) + C_M \\\\
    E_{verif}(d_1, m_1, v_2) &= \\min_{m_1 \\le v_1 < v_2}
        E_{verif}(d_1, m_1, v_1) + E(d_1, m_1, v_1, v_2)

with the closed-form segment cost ``E(d1, m1, v1, v2)`` of eq. (4)::

    E = e^{λ_s W} ( (e^{λ_f W}-1)/λ_f + V* )
      + e^{λ_s W} (e^{λ_f W}-1) (R_D + E_mem(d1, m1))
      + (e^{(λ_s+λ_f) W} - 1) E_verif(d1, m1, v1)
      + (e^{λ_s W} - 1) R_M          where W = W_{v1,v2}.

The answer is ``E_disk(n)`` — the final task always ends with a guaranteed
verification, a memory checkpoint and a disk checkpoint.

Implementation notes
--------------------
All candidate evaluations are numpy slice expressions over the
:class:`~repro.core.factors.PairFactors` matrices, so the loop nest is
``O(n^3)`` vectorized minima for ``O(n^4)`` scalar work.  Argmin tables are
kept (``int32``) for exact schedule extraction.
"""

from __future__ import annotations

import numpy as np

from ..chains import TaskChain
from ..exceptions import SolverError
from ..platforms import Platform
from .costs import CostProfile
from .factors import PairFactors
from .result import Solution
from .schedule import Action, Schedule

__all__ = ["optimize_two_level"]


def _verif_row(
    F: PairFactors, d1: int, m1: int, emem_d1m1: float
) -> tuple[np.ndarray, np.ndarray]:
    """Compute ``E_verif(d1, m1, v2)`` for all ``v2`` in ``[m1, n]``.

    Returns ``(row, arg)`` where ``row[v2]`` is the expected time to execute
    and verify tasks ``T_{m1+1} .. T_{v2}`` (last memory checkpoint after
    ``T_{m1}``, last disk checkpoint after ``T_{d1}``) and ``arg[v2]`` the
    optimal previous verification position.
    """
    n = F.n
    K1 = F.rd_eff(d1) + emem_d1m1
    rm = F.rm_eff(m1)
    row = np.full(n + 1, np.inf)
    arg = np.full(n + 1, -1, dtype=np.int32)
    row[m1] = 0.0
    for v2 in range(m1 + 1, n + 1):
        lo = m1
        cand = (
            row[lo:v2]
            + F.base_g[lo:v2, v2]
            + F.cK1[lo:v2, v2] * K1
            + F.etm1[lo:v2, v2] * row[lo:v2]
            + F.esm1[lo:v2, v2] * rm
        )
        k = int(np.argmin(cand))
        row[v2] = float(cand[k])
        arg[v2] = lo + k
    return row, arg


def optimize_two_level(
    chain: TaskChain,
    platform: Platform,
    *,
    costs: CostProfile | None = None,
) -> Solution:
    """Optimal two-level schedule (``ADMV*``) for ``chain`` on ``platform``.

    ``costs`` optionally makes every checkpoint/verification/recovery
    cost position-dependent (see :class:`~repro.core.costs.CostProfile`);
    the default reproduces the paper's uniform model.
    """
    n = chain.n
    F = PairFactors(chain, platform, costs)
    CM, CD = F.costs.CM, F.costs.CD

    # Emem[d1, m2]; arg_mem[d1, m2] = optimal previous memory position m1.
    Emem = np.full((n + 1, n + 1), np.inf)
    arg_mem = np.full((n + 1, n + 1), -1, dtype=np.int32)
    # arg_verif[d1, m1, v2] = optimal previous verification position v1.
    arg_verif = np.full((n + 1, n + 1, n + 1), -1, dtype=np.int32)

    for d1 in range(n + 1):
        # ev[m1, v2] = E_verif(d1, m1, v2) for this d1.
        ev = np.full((n + 1, n + 1), np.inf)
        Emem[d1, d1] = 0.0
        for m1 in range(d1, n + 1):
            if m1 > d1:
                cand = Emem[d1, d1:m1] + ev[d1:m1, m1] + CM[m1]
                k = int(np.argmin(cand))
                Emem[d1, m1] = float(cand[k])
                arg_mem[d1, m1] = d1 + k
            row, arg = _verif_row(F, d1, m1, float(Emem[d1, m1]))
            ev[m1, :] = row
            arg_verif[d1, m1, :] = arg

    Edisk = np.full(n + 1, np.inf)
    arg_disk = np.full(n + 1, -1, dtype=np.int32)
    Edisk[0] = 0.0
    for d2 in range(1, n + 1):
        cand = Edisk[:d2] + Emem[:d2, d2] + CD[d2]
        k = int(np.argmin(cand))
        Edisk[d2] = float(cand[k])
        arg_disk[d2] = k

    schedule = _extract_schedule(n, arg_disk, arg_mem, arg_verif)
    return Solution(
        algorithm="admv_star",
        chain=chain,
        platform=platform,
        expected_time=float(Edisk[n]),
        schedule=schedule,
        diagnostics={"Edisk": Edisk, "Emem": Emem},
    )


def _extract_schedule(
    n: int,
    arg_disk: np.ndarray,
    arg_mem: np.ndarray,
    arg_verif: np.ndarray,
) -> Schedule:
    """Backtrack the argmin tables into an explicit :class:`Schedule`."""
    levels = np.zeros(n, dtype=np.int8)

    d2 = n
    while d2 > 0:
        d1 = int(arg_disk[d2])
        if d1 < 0 or d1 >= d2:
            raise SolverError(f"inconsistent disk backtrack at d2={d2}: {d1}")
        levels[d2 - 1] = int(Action.DISK)
        # memory checkpoints within (d1, d2]
        m2 = d2
        while m2 > d1:
            m1 = int(arg_mem[d1, m2]) if m2 != d1 else d1
            if m2 == d2:
                pass  # level already DISK
            else:
                levels[m2 - 1] = max(levels[m2 - 1], int(Action.MEMORY))
            if m2 > d1 and m1 < 0:
                raise SolverError(
                    f"inconsistent memory backtrack at (d1={d1}, m2={m2})"
                )
            # guaranteed verifications within (m1, m2)
            v2 = m2
            while v2 > m1:
                v1 = int(arg_verif[d1, m1, v2])
                if v1 < 0 or v1 >= v2:
                    raise SolverError(
                        f"inconsistent verification backtrack at "
                        f"(d1={d1}, m1={m1}, v2={v2})"
                    )
                if v2 not in (m2,):
                    levels[v2 - 1] = max(levels[v2 - 1], int(Action.VERIFY))
                v2 = v1
            m2 = m1
        d2 = d1

    return Schedule(levels)
