"""Closed-form quantities of the analytic model (paper Section III).

Everything here is a pure function of the platform scalars and a segment
weight ``W``; the dynamic programs call the vectorized variants on whole
arrays of segment weights at once.

Numerical care
--------------
Realistic instances have ``λW ~ 1e-2``; the difference ``e^{λW} - 1`` would
lose half the significand if computed naively, so every formula goes through
:func:`numpy.expm1`.  All quantities have well-defined ``λ -> 0`` limits,
which we take explicitly so that error-free platforms are valid inputs:

* ``phi(λ, W) = (e^{λW} - 1) / λ      -> W``
* ``t_lost(λ, W) = 1/λ - W/(e^{λW}-1) -> W/2``

(The second limit is the intuitive "on average a failure strikes mid-way
through the segment".)
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..platforms import Platform

__all__ = [
    "p_error",
    "phi",
    "t_lost",
    "segment_cost_guaranteed",
    "segment_cost_factors",
    "SegmentFactors",
]


def p_error(lam: float, W: np.ndarray | float) -> np.ndarray | float:
    """Probability ``1 - e^{-λW}`` of at least one error in work ``W``."""
    if lam < 0:
        raise InvalidParameterError(f"rate must be >= 0, got {lam!r}")
    return -np.expm1(-lam * np.asarray(W, dtype=np.float64))


def phi(lam: float, W: np.ndarray | float) -> np.ndarray | float:
    """``(e^{λW} - 1) / λ`` with the ``λ -> 0`` limit ``W``.

    This is the expected time *wasted plus worked* factor that appears in
    eq. (4); it is also the mean number of Poisson-free attempts times the
    attempt length.
    """
    W = np.asarray(W, dtype=np.float64)
    if lam < 0:
        raise InvalidParameterError(f"rate must be >= 0, got {lam!r}")
    if lam == 0.0:
        return W.copy() if W.ndim else float(W)
    x = lam * W
    # Large λW overflows e^{λW} to inf — the correct limit (phi -> inf) —
    # and subnormal λ overflows 1/λ; both are repaired or intended, so the
    # intermediate overflow warnings are noise.
    with np.errstate(over="ignore"):
        out = np.expm1(x) / lam
    # For λW < 1e-8 (including subnormal rates, where expm1/λ divides two
    # denormals and quantizes) switch to the series W (1 + λW/2 + (λW)^2/6).
    small = x < 1e-8
    if np.any(small):
        out = np.where(small, W * (1.0 + x / 2.0 + x * x / 6.0), out)
    return out if out.ndim else float(out)


def t_lost(lam: float, W: np.ndarray | float) -> np.ndarray | float:
    """Expected time lost to a fail-stop error in a segment of work ``W``.

    Paper eq. (3): ``T^lost = 1/λ - W / (e^{λW} - 1)``, the mean arrival time
    of the error conditioned on it striking before the segment completes.
    The ``λ -> 0`` limit is ``W / 2`` and ``W == 0`` maps to ``0``.
    """
    W = np.asarray(W, dtype=np.float64)
    if lam < 0:
        raise InvalidParameterError(f"rate must be >= 0, got {lam!r}")
    if lam == 0.0:
        out = W / 2.0
        return out if out.ndim else float(out)
    x = lam * W
    # λW > ~709 overflows e^{λW} to inf, where W/(e^{λW}-1) vanishes and
    # the correct large-λW limit T_lost -> 1/λ falls out of the formula;
    # subnormal λ overflows 1/λ and is repaired by the series below.  Both
    # overflows are therefore benign: silence them instead of warning.
    with np.errstate(over="ignore"):
        denom = np.expm1(x)
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        out = np.where(
            denom > 0.0, 1.0 / lam - W / np.where(denom > 0, denom, 1.0), 0.0
        )
    # For λW below ~1e-8 the subtraction above cancels catastrophically
    # (and overflows to inf - inf for subnormal rates); switch to the series
    # T_lost = W/2 (1 - λW/6 + O((λW)^2)).
    small = x < 1e-8
    if np.any(small):
        series = (W / 2.0) * (1.0 - x / 6.0)
        out = np.where(small, series, out)
    return out if out.ndim else float(out)


class SegmentFactors:
    """Precomputed exponential factors for a batch of segment weights.

    For a vector of weights ``W`` this caches::

        es   = e^{λ_s W}
        efm1 = e^{λ_f W} - 1          (expm1)
        esm1 = e^{λ_s W} - 1          (expm1)
        etot = e^{(λ_f+λ_s) W}
        etm1 = e^{(λ_f+λ_s) W} - 1    (expm1)

    which are exactly the combinations appearing in eq. (4) and in the
    partial-verification recurrences.  Instantiating one per DP run avoids
    recomputing exponentials in inner loops (the dominant cost otherwise).
    """

    __slots__ = ("W", "es", "efm1", "esm1", "etot", "etm1")

    def __init__(self, platform: Platform, W: np.ndarray) -> None:
        W = np.asarray(W, dtype=np.float64)
        lf, ls = platform.lf, platform.ls
        self.W = W
        self.es = np.exp(ls * W)
        self.efm1 = np.expm1(lf * W)
        self.esm1 = np.expm1(ls * W)
        self.etm1 = np.expm1((lf + ls) * W)
        self.etot = self.etm1 + 1.0


def segment_cost_guaranteed(
    platform: Platform,
    W: np.ndarray | float,
    *,
    E_mem: np.ndarray | float,
    E_verif: np.ndarray | float,
    RD: np.ndarray | float,
    RM: np.ndarray | float,
) -> np.ndarray | float:
    """Expected cost ``E(d1, m1, v1, v2)`` of a guaranteed-verified segment.

    Paper eq. (4), fully simplified::

        E = e^{λ_s W} ( (e^{λ_f W} - 1)/λ_f + V* )
          + e^{λ_s W} (e^{λ_f W} - 1) (R_D + E_mem)
          + (e^{(λ_s+λ_f) W} - 1) E_verif
          + (e^{λ_s W} - 1) R_M

    Parameters
    ----------
    W:
        Segment weight ``W_{v1,v2}`` (scalar or array; broadcasting applies).
    E_mem:
        ``E_mem(d1, m1)`` — expected re-execution time from the last disk
        checkpoint to the last memory checkpoint.
    E_verif:
        ``E_verif(d1, m1, v1)`` — expected re-execution time from the last
        memory checkpoint to the last verification.
    RD, RM:
        Effective recovery costs (0 when the target is the virtual ``T0``).

    All array arguments broadcast together, so the two-level DP evaluates a
    whole row of candidates ``v1`` in one call.
    """
    W = np.asarray(W, dtype=np.float64)
    es = np.exp(platform.ls * W)
    efm1 = np.expm1(platform.lf * W)
    esm1 = np.expm1(platform.ls * W)
    etm1 = np.expm1(platform.lam_total * W)
    lam_f = platform.lf
    work_term = phi(lam_f, W)
    out = (
        es * (work_term + platform.Vg)
        + es * efm1 * (np.asarray(RD, dtype=np.float64) + np.asarray(E_mem))
        + etm1 * np.asarray(E_verif)
        + esm1 * np.asarray(RM, dtype=np.float64)
    )
    return out if out.ndim else float(out)


def segment_cost_factors(
    platform: Platform, factors: SegmentFactors
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decompose eq. (4) as ``E = base + cRDmem*(RD+E_mem) + cV*E_verif + cRM*RM``.

    Returns the four coefficient arrays (``base`` includes the ``V*`` term),
    letting the DPs combine precomputed exponentials with per-candidate
    scalars without re-exponentiating.
    """
    lam_f = platform.lf
    work_term = factors.efm1 / lam_f if lam_f > 0 else factors.W
    base = factors.es * (work_term + platform.Vg)
    c_rd_mem = factors.es * factors.efm1
    c_verif = factors.etm1
    c_rm = factors.esm1
    return base, c_rd_mem, c_verif, c_rm
