"""Exact expected-makespan evaluation of a *fixed* schedule.

This module is deliberately independent from the dynamic programs: it models
the execution of a schedule as an absorbing Markov chain and solves the
first-passage-time linear system.  The dynamic programs of the paper are
validated against it (their optimal value must equal the evaluation of the
schedule they extract, and for small ``n`` the exhaustive minimum over all
schedules must match too).

Markov model
------------
Execution stops only at *verified* positions (any verification implies a
stop; checkpointed positions carry a guaranteed verification by
construction).  The state is the pair ``(position, latent?)`` where
``latent`` records an undetected silent error corrupting the current data.
``latent`` states exist only at partial-verification positions — a
guaranteed verification never lets an error through.

From state ``(s, x)``, executing the segment of work ``W`` up to the next
verified position ``s'``:

* a fail-stop error strikes first with probability ``1 - e^{-λ_f W}``: we
  lose ``T_lost(W)`` (eq. 3), pay ``R_D`` (0 if the last disk checkpoint is
  the virtual ``T0``) and restart *clean* from the last disk checkpoint —
  a fail-stop wipes memory, latent corruption included;
* otherwise we pay ``W`` plus the verification cost at ``s'``; the data is
  corrupted iff ``x`` is latent or a new silent error struck
  (prob. ``1 - e^{-λ_s W}``):

  * corruption detected (always for guaranteed, prob. ``r`` for partial):
    pay ``R_M`` (0 if the last memory checkpoint is ``T0``) and restart
    clean from the last memory checkpoint;
  * corruption missed (partial only, prob. ``g``): continue latently
    corrupted from ``s'``;
  * no corruption: pay the checkpoint costs at ``s'`` (``C_M``, then
    ``C_D``) and continue clean.

The chain absorbs after the final task's actions complete.  Expected
absorption time from the start state solves ``(I - P) x = c`` where ``c`` is
the per-state expected immediate cost.
"""

from __future__ import annotations

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidScheduleError
from ..platforms import Platform
from .closed_form import t_lost
from .costs import CostProfile
from .schedule import Action, Schedule

__all__ = [
    "evaluate_schedule",
    "error_free_time",
    "MarkovEvaluation",
    "COST_CATEGORIES",
]

#: Cost categories of the expected-time breakdown (they sum to the total):
#: raw computation (first pass + re-executions), time lost to interrupted
#: segments, recovery transfers, verification costs, checkpoint transfers.
COST_CATEGORIES: tuple[str, ...] = (
    "work",
    "fail_stop_loss",
    "recovery",
    "verification",
    "checkpointing",
)


class MarkovEvaluation:
    """Result of :func:`evaluate_schedule` with diagnostic accessors.

    Attributes
    ----------
    expected_time:
        Expected makespan of the schedule (seconds).
    state_labels:
        Human-readable labels of the Markov states, aligned with
        ``state_times``.
    state_times:
        Expected remaining time from each state (solution of the linear
        system) — useful to inspect how expensive a rollback to each
        position is.
    components:
        Expected time per :data:`COST_CATEGORIES` entry; the values sum to
        ``expected_time``.
    """

    __slots__ = ("expected_time", "state_labels", "state_times", "components")

    def __init__(
        self,
        expected_time: float,
        state_labels: list[str],
        state_times: np.ndarray,
        components: dict[str, float] | None = None,
    ) -> None:
        self.expected_time = expected_time
        self.state_labels = state_labels
        self.state_times = state_times
        self.components = components or {}

    def __float__(self) -> float:
        return self.expected_time

    def __repr__(self) -> str:
        return f"MarkovEvaluation(expected_time={self.expected_time:.6g})"

    def waste_breakdown(self, chain: TaskChain) -> dict[str, float]:
        """Split the expected time into useful work plus waste categories.

        ``re_executed_work`` is total expected computation minus the chain's
        one-pass weight; the remaining categories come straight from
        :attr:`components`.  All values sum to :attr:`expected_time`.
        """
        out = dict(self.components)
        work = out.pop("work")
        out["useful_work"] = chain.total_weight
        out["re_executed_work"] = work - chain.total_weight
        return out

    def render_breakdown(self, chain: TaskChain) -> str:
        """Human-readable waste breakdown table."""
        breakdown = self.waste_breakdown(chain)
        order = [
            "useful_work",
            "re_executed_work",
            "fail_stop_loss",
            "recovery",
            "verification",
            "checkpointing",
        ]
        lines = ["expected-time breakdown:"]
        for name in order:
            value = breakdown[name]
            share = value / self.expected_time if self.expected_time else 0.0
            lines.append(f"  {name:17s} {value:12.2f}s  ({share:6.2%})")
        lines.append(f"  {'total':17s} {self.expected_time:12.2f}s")
        return "\n".join(lines)


def error_free_time(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    costs: CostProfile | None = None,
) -> float:
    """Deterministic makespan with no errors: work + all action costs."""
    if costs is None:
        costs = CostProfile.uniform(chain.n, platform)
    total = chain.total_weight
    for i, action in enumerate(schedule, start=1):
        if action == Action.PARTIAL:
            total += costs.Vp[i]
        elif action >= Action.VERIFY:
            total += costs.Vg[i]
        if action >= Action.MEMORY:
            total += costs.CM[i]
        if action == Action.DISK:
            total += costs.CD[i]
    return float(total)


def _stop_positions(schedule: Schedule) -> list[int]:
    """Verified positions, preceded by the virtual start position 0."""
    return [0] + schedule.verified_positions


def evaluate_schedule(
    chain: TaskChain,
    platform: Platform,
    schedule: Schedule,
    *,
    strict: bool = True,
    costs: CostProfile | None = None,
) -> MarkovEvaluation:
    """Exact expected makespan of ``schedule`` on ``chain``/``platform``.

    Parameters
    ----------
    costs:
        Optional per-task cost profile (default: the platform's uniform
        scalars, i.e. the paper's model).
    strict:
        Require the final task to be disk-checkpointed (the paper's setting).
        With ``strict=False`` the final task must still carry a guaranteed
        verification whenever ``λ_s > 0``, otherwise silent errors could
        escape undetected and "expected time to correct completion" would be
        ill-defined.

    Raises
    ------
    InvalidScheduleError
        If the schedule length does not match the chain or violates the
        rules above.
    """
    if schedule.n != chain.n:
        raise InvalidScheduleError(
            f"schedule covers {schedule.n} tasks but the chain has {chain.n}"
        )
    schedule.validate(strict=strict)
    if not strict and platform.ls > 0.0 and schedule.action(chain.n) < Action.VERIFY:
        raise InvalidScheduleError(
            "with silent errors the final task needs a guaranteed "
            "verification for the expected correct-completion time to exist"
        )

    if costs is None:
        costs = CostProfile.uniform(chain.n, platform)
    stops = _stop_positions(schedule)
    k = len(stops)  # number of stop positions including virtual 0
    stop_index = {pos: j for j, pos in enumerate(stops)}

    # Last memory / disk checkpoint at or before each stop position.
    last_mem = [0] * k
    last_disk = [0] * k
    mem, disk = 0, 0
    for j, pos in enumerate(stops):
        if pos > 0:
            action = schedule.action(pos)
            if action >= Action.MEMORY:
                mem = pos
            if action == Action.DISK:
                disk = pos
        last_mem[j] = mem
        last_disk[j] = disk

    # State indexing: clean state per stop position, latent state per
    # partial-verification position.
    clean_state = {j: j for j in range(k)}
    latent_state: dict[int, int] = {}
    next_id = k
    for j, pos in enumerate(stops):
        if pos > 0 and schedule.action(pos) == Action.PARTIAL:
            latent_state[j] = next_id
            next_id += 1
    n_states = next_id

    P = np.zeros((n_states, n_states), dtype=np.float64)
    # Per-category immediate expected costs; summing the columns gives the
    # classic cost vector, solving per column gives the waste breakdown.
    C = np.zeros((n_states, len(COST_CATEGORIES)), dtype=np.float64)
    cat = {name: i for i, name in enumerate(COST_CATEGORIES)}

    lf, ls = platform.lf, platform.ls

    def _add(src: int, dst: int | None, prob: float, **category_costs: float) -> None:
        """Accumulate a transition (dst=None means absorption)."""
        if prob <= 0.0:
            return
        for name, cost in category_costs.items():
            C[src, cat[name]] += prob * cost
        if dst is not None:
            P[src, dst] += prob

    for j in range(k - 1):  # from stop j over segment to stop j+1
        pos, nxt = stops[j], stops[j + 1]
        W = chain.segment_weight(pos, nxt)
        action_next = schedule.action(nxt)
        is_partial = action_next == Action.PARTIAL
        verif_cost = float(costs.Vp[nxt] if is_partial else costs.Vg[nxt])
        detect = platform.r if is_partial else 1.0

        pf = -np.expm1(-lf * W)
        ps = -np.expm1(-ls * W)
        loss = t_lost(lf, W)
        rd = float(costs.RD[last_disk[j]])
        rm = float(costs.RM[last_mem[j]])
        disk_target = clean_state[stop_index[last_disk[j]]]
        mem_target = clean_state[stop_index[last_mem[j]]]

        ckpt_cost = 0.0
        if action_next >= Action.MEMORY:
            ckpt_cost += float(costs.CM[nxt])
        if action_next == Action.DISK:
            ckpt_cost += float(costs.CD[nxt])
        # Absorb after the final stop's checkpoint completes.
        clean_dst: int | None = clean_state[j + 1] if j + 1 < k - 1 else None

        for latent in (False, True):
            if latent and j not in latent_state:
                continue
            src = latent_state[j] if latent else clean_state[j]
            p_err = 1.0 if latent else ps

            _add(src, disk_target, pf, fail_stop_loss=loss, recovery=rd)
            no_ff = 1.0 - pf
            # corrupted and detected -> memory rollback
            _add(
                src,
                mem_target,
                no_ff * p_err * detect,
                work=W,
                verification=verif_cost,
                recovery=rm,
            )
            # corrupted and missed -> latent at next stop (partial only)
            if is_partial and detect < 1.0:
                _add(
                    src,
                    latent_state[j + 1],
                    no_ff * p_err * (1.0 - detect),
                    work=W,
                    verification=verif_cost,
                )
            # clean arrival -> pay checkpoints, move on (or absorb)
            _add(
                src,
                clean_dst,
                no_ff * (1.0 - p_err),
                work=W,
                verification=verif_cost,
                checkpointing=ckpt_cost,
            )

    A = np.eye(n_states) - P
    try:
        X = np.linalg.solve(A, C)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - pathological
        raise InvalidScheduleError(
            f"schedule induces a non-terminating execution ({exc})"
        ) from exc
    x = X.sum(axis=1)

    labels = [f"T{stops[j]}:clean" for j in range(k)]
    for j, sid in sorted(latent_state.items(), key=lambda kv: kv[1]):
        labels.append(f"T{stops[j]}:latent")
    components = {
        name: float(X[0, i]) for i, name in enumerate(COST_CATEGORIES)
    }
    return MarkovEvaluation(float(x[0]), labels, x, components)
