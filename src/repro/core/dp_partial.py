"""Full dynamic program ``ADMV`` with partial verifications (paper §III-B).

This is the most involved algorithm of the paper: between two guaranteed
verifications it places *partial* verifications (cost ``V``, recall ``r``),
accounting for errors that slip through (probability ``g = 1 - r``) and are
only caught further right — possibly by the closing guaranteed verification.

Paper recurrences (for fixed ``d1, m1``, writing ``Λ = λ_f + λ_s``):

* ``E_right(v1, p1, v2)`` — expected time lost executing ``T_{p1+1}..T_{v2}``
  *given* a latent silent error, following the optimal next-verification
  chain ``p2 = next(p1)``::

      E_right(p1) = (1 - e^{-λ_f W}) (T_lost(W) + R_D + E_mem(d1, m1))
                  + e^{-λ_f W} (W + V + (1-g) R_M + g E_right(p2)),
      E_right(v2) = R_M                     with W = W_{p1,p2}

* ``E⁻(v1, p1, p2, v2)`` — the expected segment cost with the left
  re-execution term removed (re-injected through the ``e^{Λ W_{p2,v2}}``
  re-execution multiplier)::

      E⁻ = e^{λ_s W} ( (e^{λ_f W}-1)/λ_f + V )
         + e^{λ_s W} (e^{λ_f W}-1) (R_D + E_mem(d1, m1))
         + (e^{Λ W}-1) E_verif(d1, m1, v1)
         + (e^{λ_s W}-1) ((1-g) R_M + g E_right(p2))

* ``E_partial(v1, p1, v2) = min_{p1 < p2 <= v2}`` of
  ``E⁻(p1, p2) e^{Λ W_{p2,v2}} + E_partial(v1, p2, v2)`` for ``p2 < v2`` and
  ``E⁻(p1, v2) + e^{Λ W_{p1,v2}} (V* - V)`` for ``p2 = v2``;

* ``E_verif(d1, m1, v2) = min_{v1} E_verif(d1, m1, v1) + E_partial(v1, v1, v2)``.

Affine decomposition (this implementation's speed-up)
------------------------------------------------------
The term ``K2 = E_verif(d1, m1, v1)`` enters every candidate of the
``E_partial`` minimisation affinely, and by induction its coefficient
telescopes to ``e^{Λ W_{p1,v2}} - 1`` *independently of the chosen chain*:
for ``p2 < v2`` the coefficient is
``(e^{Λ W_{p1,p2}}-1) e^{Λ W_{p2,v2}} + (e^{Λ W_{p2,v2}}-1)
= e^{Λ W_{p1,v2}} - 1``, matching the ``p2 = v2`` base case.  Therefore the
argmin does not depend on ``v1`` and::

    E_partial(v1, p1, v2) = Ehat(p1, v2) + (e^{Λ W_{p1,v2}} - 1) K2,

where ``Ehat`` is ``E_partial`` computed with ``K2 = 0``.  One scan per
``(d1, m1)`` yields every ``v1`` at once, dropping the complexity from the
paper's ``O(n^6)`` to ``O(n^5)`` (and the table space from ``O(n^5)`` to
``O(n^3)``).  ``E_verif`` then reads::

    E_verif(d1, m1, v2) = min_{v1} E_verif(d1, m1, v1) e^{Λ W_{v1,v2}}
                                   + Ehat(v1, v2).

A direct per-``v1`` reference implementation (kept in the test suite) and
the exhaustive/Markov oracle both certify the decomposition.
"""

from __future__ import annotations

import numpy as np

from ..chains import TaskChain
from ..exceptions import SolverError
from ..platforms import Platform
from .costs import CostProfile
from .factors import PairFactors
from .result import Solution
from .schedule import Action, Schedule

__all__ = ["optimize_partial", "scan_interval"]


def scan_interval(
    F: PairFactors,
    m1: int,
    K1: float,
    rm: float,
    *,
    want_chains: bool = False,
    paper_faithful: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Run the partial-verification scan for one ``(d1, m1)`` pair.

    Parameters
    ----------
    F:
        Precomputed pair factors for the instance.
    m1:
        Left end of the interval (position of the last memory checkpoint).
    K1:
        ``R_D(d1) + E_mem(d1, m1)`` — the disk-rollback re-execution cost.
    rm:
        Effective memory recovery cost ``R_M`` (0 when ``m1 == 0``).
    want_chains:
        Also return the ``next_p[p1, v2]`` successor table needed to extract
        partial-verification positions (saves memory when False: the forward
        pass only needs values, the backtracking re-runs the scan for the few
        ``(d1, m1)`` pairs on the optimal path).

    Returns
    -------
    everif_row:
        ``everif_row[v2] = E_verif(d1, m1, v2)`` for ``v2`` in ``[m1, n]``.
    arg_v1:
        ``arg_v1[v2]`` = optimal previous guaranteed verification.
    next_p:
        ``next_p[p1, v2]`` = optimal next verification after ``p1`` inside a
        guaranteed-verification interval ending at ``v2`` (or None).
    """
    n = F.n
    platform = F.platform
    Vp_at, Vg_at = F.costs.Vp, F.costs.Vg
    g = platform.g
    rm_mix = (1.0 - g) * rm  # (1-g) R_M term of E⁻ / E_right

    everif_row = np.full(n + 1, np.inf)
    arg_v1 = np.full(n + 1, -1, dtype=np.int32)
    everif_row[m1] = 0.0
    next_p = (
        np.full((n + 1, n + 1), -1, dtype=np.int32) if want_chains else None
    )

    # Per-v2 scratch buffers (re-filled each iteration).
    ehat = np.empty(n + 1)
    eright = np.empty(n + 1)

    for v2 in range(m1 + 1, n + 1):
        # Right-to-left scan over p1; candidates p2 in (p1, v2].
        ehat[v2] = 0.0  # sentinel: "E_partial contribution of p2 = v2"
        eright[v2] = rm
        for p1 in range(v2 - 1, m1 - 1, -1):
            sl = slice(p1 + 1, v2 + 1)
            # E⁻(p1, p2) with K2 = 0, vector over p2 in (p1, v2]:
            em = (
                F.base_p[p1, sl]
                + F.cK1[p1, sl] * K1
                + F.esm1[p1, sl] * (rm_mix + g * eright[sl])
            )
            cand = em * F.etot[sl, v2] + ehat[sl]
            # p2 = v2 candidate: no re-execution multiplier, and the closing
            # verification is guaranteed, hence the (V* - V) correction.
            # The paper multiplies the correction by e^{Λ W_{p1,v2}}; exact
            # consistency with eq. (4) (a fail-stop interrupts the segment
            # *before* the closing verification runs, so only silent-error
            # retries re-pay it) requires e^{λ_s W_{p1,v2}} — equivalently,
            # using base_g instead of base_p on the final hop.  See the
            # module docstring and DESIGN.md §"paper deviations".
            corr = F.etot[p1, v2] if paper_faithful else F.es[p1, v2]
            cand[-1] += corr * (Vg_at[v2] - Vp_at[v2])
            k = int(np.argmin(cand))
            p2 = p1 + 1 + k
            ehat[p1] = float(cand[k])
            if next_p is not None:
                next_p[p1, v2] = p2
            # E_right(p1) through the optimal successor p2.  The final hop
            # ends at the guaranteed verification, whose cost is V*, not V
            # (second paper deviation, same reasoning).
            if p2 < v2 or paper_faithful:
                hop_cost = float(Vp_at[p2 if p2 < v2 else v2])
            else:
                hop_cost = float(Vg_at[v2])
            eright[p1] = F.pf[p1, p2] * (F.tlost[p1, p2] + K1) + (
                1.0 - F.pf[p1, p2]
            ) * (F.W[p1, p2] + hop_cost + rm_mix + g * eright[p2])

        cand_v1 = everif_row[m1:v2] * F.etot[m1:v2, v2] + ehat[m1:v2]
        k = int(np.argmin(cand_v1))
        everif_row[v2] = float(cand_v1[k])
        arg_v1[v2] = m1 + k

    return everif_row, arg_v1, next_p


def optimize_partial(
    chain: TaskChain,
    platform: Platform,
    *,
    paper_faithful: bool = False,
    costs: CostProfile | None = None,
) -> Solution:
    """Optimal schedule with partial verifications (``ADMV``).

    Parameters
    ----------
    paper_faithful:
        Use the paper's literal ``e^{Λ W}(V* - V)`` correction and
        ``V``-priced final ``E_right`` hop instead of the exact variants
        (see :func:`scan_interval`); the difference is ``O(λ_f W (V*-V))``
        per interval — negligible on realistic platforms but measurable
        against the exact Markov oracle.
    """
    n = chain.n
    F = PairFactors(chain, platform, costs)
    CM, CD = F.costs.CM, F.costs.CD

    Emem = np.full((n + 1, n + 1), np.inf)
    arg_mem = np.full((n + 1, n + 1), -1, dtype=np.int32)
    arg_verif = np.full((n + 1, n + 1, n + 1), -1, dtype=np.int32)

    for d1 in range(n + 1):
        ev = np.full((n + 1, n + 1), np.inf)  # ev[m1, v2] for this d1
        Emem[d1, d1] = 0.0
        for m1 in range(d1, n + 1):
            if m1 > d1:
                cand = Emem[d1, d1:m1] + ev[d1:m1, m1] + CM[m1]
                k = int(np.argmin(cand))
                Emem[d1, m1] = float(cand[k])
                arg_mem[d1, m1] = d1 + k
            row, arg, _ = scan_interval(
                F,
                m1,
                F.rd_eff(d1) + float(Emem[d1, m1]),
                F.rm_eff(m1),
                paper_faithful=paper_faithful,
            )
            ev[m1, :] = row
            arg_verif[d1, m1, :] = arg

    Edisk = np.full(n + 1, np.inf)
    arg_disk = np.full(n + 1, -1, dtype=np.int32)
    Edisk[0] = 0.0
    for d2 in range(1, n + 1):
        cand = Edisk[:d2] + Emem[:d2, d2] + CD[d2]
        k = int(np.argmin(cand))
        Edisk[d2] = float(cand[k])
        arg_disk[d2] = k

    schedule = _extract_schedule(
        F, Emem, arg_disk, arg_mem, arg_verif, paper_faithful=paper_faithful
    )
    return Solution(
        algorithm="admv",
        chain=chain,
        platform=platform,
        expected_time=float(Edisk[n]),
        schedule=schedule,
        diagnostics={"Edisk": Edisk, "Emem": Emem},
    )


def _extract_schedule(
    F: PairFactors,
    Emem: np.ndarray,
    arg_disk: np.ndarray,
    arg_mem: np.ndarray,
    arg_verif: np.ndarray,
    *,
    paper_faithful: bool = False,
) -> Schedule:
    """Backtrack disk / memory / guaranteed chains, then re-run the scan on
    each optimal ``(d1, m1)`` pair to recover partial-verification chains."""
    n = F.n
    levels = np.zeros(n, dtype=np.int8)

    d2 = n
    while d2 > 0:
        d1 = int(arg_disk[d2])
        if d1 < 0 or d1 >= d2:
            raise SolverError(f"inconsistent disk backtrack at d2={d2}: {d1}")
        levels[d2 - 1] = int(Action.DISK)
        m2 = d2
        while m2 > d1:
            m1 = int(arg_mem[d1, m2])
            if m2 != d2:
                levels[m2 - 1] = max(levels[m2 - 1], int(Action.MEMORY))
            if m1 < 0 or m1 >= m2:
                raise SolverError(
                    f"inconsistent memory backtrack at (d1={d1}, m2={m2})"
                )
            # Re-run the scan once for this (d1, m1) to get partial chains.
            _, _, next_p = scan_interval(
                F,
                m1,
                F.rd_eff(d1) + float(Emem[d1, m1]),
                F.rm_eff(m1),
                want_chains=True,
                paper_faithful=paper_faithful,
            )
            assert next_p is not None
            v2 = m2
            while v2 > m1:
                v1 = int(arg_verif[d1, m1, v2])
                if v1 < 0 or v1 >= v2:
                    raise SolverError(
                        f"inconsistent verification backtrack at "
                        f"(d1={d1}, m1={m1}, v2={v2})"
                    )
                if v2 != m2:
                    levels[v2 - 1] = max(levels[v2 - 1], int(Action.VERIFY))
                # Partial verifications strictly inside (v1, v2).
                p = int(next_p[v1, v2])
                while 0 < p < v2:
                    levels[p - 1] = max(levels[p - 1], int(Action.PARTIAL))
                    p = int(next_p[p, v2])
                v2 = v1
            m2 = m1
        d2 = d1

    return Schedule(levels)
