"""Precomputed per-segment-pair factor matrices for the dynamic programs.

Every recurrence of the paper combines a handful of exponentials of segment
weights ``W_{i,j}``.  The three optimizers share one :class:`PairFactors`
instance per ``(chain, platform)`` pair: all ``(n+1) x (n+1)`` factor
matrices are built once with vectorized numpy broadcasting, after which the
DP inner loops are pure slice-multiply-add operations with no transcendental
calls (see the hpc-parallel guide: hoist work out of the hot loop, keep it
vectorized).

Matrix glossary (entry ``[i, j]`` refers to the segment ``W_{i,j}``; only the
upper triangle ``i <= j`` is meaningful):

=========  ==========================================================
``W``      segment weights ``prefix[j] - prefix[i]``
``es``     ``e^{λ_s W}``
``efm1``   ``e^{λ_f W} - 1``         (``expm1`` accuracy)
``esm1``   ``e^{λ_s W} - 1``
``etot``   ``e^{(λ_f+λ_s) W}``
``etm1``   ``e^{(λ_f+λ_s) W} - 1``
``pf``     ``1 - e^{-λ_f W}``         (fail-stop probability)
``tlost``  expected lost time, eq. (3)
``base_g`` ``e^{λ_s W} (φ_f(W) + V*)``  — constant part of eq. (4)
``base_p`` ``e^{λ_s W} (φ_f(W) + V)``   — same with a partial verification
``cK1``    ``e^{λ_s W} (e^{λ_f W} - 1)`` — coefficient of ``R_D + E_mem``
=========  ==========================================================

where ``φ_f(W) = (e^{λ_f W} - 1)/λ_f`` (limit ``W`` when ``λ_f = 0``).
"""

from __future__ import annotations

import numpy as np

from ..chains import TaskChain
from ..platforms import Platform
from .costs import CostProfile

__all__ = ["PairFactors"]


class PairFactors:
    """All pairwise factor matrices for one ``(chain, platform)`` instance.

    An optional :class:`~repro.core.costs.CostProfile` makes every cost
    position-dependent; the verification costs enter the ``base_g`` /
    ``base_p`` matrices through their *column* index (the verified task),
    so the DP inner loops are unchanged.
    """

    __slots__ = (
        "chain",
        "platform",
        "costs",
        "n",
        "W",
        "es",
        "efm1",
        "esm1",
        "etot",
        "etm1",
        "pf",
        "tlost",
        "base_g",
        "base_p",
        "cK1",
    )

    def __init__(
        self,
        chain: TaskChain,
        platform: Platform,
        costs: CostProfile | None = None,
    ) -> None:
        self.chain = chain
        self.platform = platform
        self.costs = costs if costs is not None else CostProfile.uniform(
            chain.n, platform
        )
        lf, ls = platform.lf, platform.ls
        self.n = chain.n

        prefix = chain.prefix  # length n+1
        W = prefix[None, :] - prefix[:, None]  # W[i, j] = W_{i,j}
        self.W = W

        # λW beyond ~709 overflows the exponentials to inf — a meaningful
        # saturation (such segments have unbounded expected cost, so the
        # DPs never select them) — and subnormal rates overflow 1/λ, which
        # the series fallbacks below repair; silence both instead of warning.
        with np.errstate(over="ignore"):
            self.es = np.exp(ls * W)
            self.efm1 = np.expm1(lf * W)
            self.esm1 = np.expm1(ls * W)
            self.etm1 = np.expm1((lf + ls) * W)
            self.etot = self.etm1 + 1.0
            self.pf = -np.expm1(-lf * W)

        # Expected lost time to a fail-stop error, eq. (3); λ_f -> 0 gives
        # W/2 and W == 0 gives 0.  Entries below the diagonal (W < 0) are
        # never read; they are clamped to 0 to avoid spurious warnings.
        if lf > 0.0:
            denom = self.efm1
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                # Where λ_f W overflowed, W/inf vanishes and the correct
                # large-λW limit T_lost -> 1/λ_f falls out of the formula.
                tl = 1.0 / lf - W / np.where(denom != 0.0, denom, np.inf)
            # series fallback where λ_f W is too small for the subtraction
            # (see closed_form.t_lost)
            x = lf * W
            small = (x < 1e-8) & (W > 0.0)
            if np.any(small):
                tl = np.where(small, (W / 2.0) * (1.0 - x / 6.0), tl)
            tl[W <= 0.0] = 0.0
            self.tlost = tl
        else:
            self.tlost = np.where(W > 0.0, W / 2.0, 0.0)

        if lf > 0.0:
            with np.errstate(over="ignore"):
                phi_f = self.efm1 / lf
            # series fallback where λ_f W is below float-division accuracy
            # (see closed_form.phi)
            x = lf * W
            small = x < 1e-8
            if np.any(small):
                phi_f = np.where(small, W * (1.0 + x / 2.0 + x * x / 6.0), phi_f)
        else:
            phi_f = W
        # Verification costs are paid at the *end* of a segment: broadcast
        # per-position costs over the column (destination) index.
        self.base_g = self.es * (phi_f + self.costs.Vg[None, :])
        self.base_p = self.es * (phi_f + self.costs.Vp[None, :])
        self.cK1 = self.es * self.efm1

        for name in (
            "W",
            "es",
            "efm1",
            "esm1",
            "etot",
            "etm1",
            "pf",
            "tlost",
            "base_g",
            "base_p",
            "cK1",
        ):
            getattr(self, name).setflags(write=False)

    def rd_eff(self, d1: int) -> float:
        """Disk recovery cost from the checkpoint at ``T_{d1}`` (0 at T0)."""
        return float(self.costs.RD[d1])

    def rm_eff(self, m1: int) -> float:
        """Memory recovery cost from the checkpoint at ``T_{m1}`` (0 at T0)."""
        return float(self.costs.RM[m1])
