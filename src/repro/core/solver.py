"""Unified optimizer front-end.

:func:`optimize` dispatches on an algorithm name and returns a
:class:`~repro.core.result.Solution`.  Canonical names follow the paper:

=============  ==================================================== =========
name           places                                               via
=============  ==================================================== =========
``adv_star``   disk ckpts + guaranteed verifications                 DP O(n^3)
``admv_star``  disk + memory ckpts + guaranteed verifications        DP O(n^4)
``admv``       disk + memory ckpts + guaranteed + partial verifs     DP O(n^5)
``exhaustive`` any action set, brute force (small ``n`` only)        O(5^n)
=============  ==================================================== =========

Aliases accepted for convenience: ``ADV*`` / ``ADMV*`` / ``ADMV`` (paper
notation, case-insensitive) and ``single`` / ``two_level`` / ``partial``.
"""

from __future__ import annotations

from collections.abc import Callable

from ..chains import TaskChain
from ..exceptions import InvalidParameterError
from ..obs import metrics as _metrics
from ..platforms import Platform
from .dp_partial import optimize_partial
from .dp_single import optimize_single_level
from .dp_two_level import optimize_two_level
from .exhaustive import exhaustive_search
from .result import Solution

__all__ = ["optimize", "ALGORITHMS", "canonical_algorithm"]

_ALIASES: dict[str, str] = {
    "adv*": "adv_star",
    "adv_star": "adv_star",
    "advstar": "adv_star",
    "single": "adv_star",
    "single_level": "adv_star",
    "admv*": "admv_star",
    "admv_star": "admv_star",
    "admvstar": "admv_star",
    "two_level": "admv_star",
    "admv": "admv",
    "partial": "admv",
    "full": "admv",
    "exhaustive": "exhaustive",
    "brute_force": "exhaustive",
}

#: Canonical algorithm names, in increasing generality order.
ALGORITHMS: tuple[str, ...] = ("adv_star", "admv_star", "admv")


def canonical_algorithm(name: str) -> str:
    """Resolve an algorithm alias to its canonical name.

    >>> canonical_algorithm("ADMV*")
    'admv_star'
    """
    key = name.strip().lower().replace("-", "_")
    try:
        return _ALIASES[key]
    except KeyError:
        known = ", ".join(sorted(set(_ALIASES.values())))
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; expected one of: {known}"
        ) from None


def _run_exhaustive(
    chain: TaskChain, platform: Platform, *, costs=None
) -> Solution:
    value, schedule = exhaustive_search(
        chain, platform, algorithm="admv", costs=costs
    )
    return Solution(
        algorithm="exhaustive",
        chain=chain,
        platform=platform,
        expected_time=value,
        schedule=schedule,
    )


_DISPATCH: dict[str, Callable[[TaskChain, Platform], Solution]] = {
    "adv_star": optimize_single_level,
    "admv_star": optimize_two_level,
    "admv": optimize_partial,
    "exhaustive": _run_exhaustive,
}


def optimize(
    chain: TaskChain,
    platform: Platform,
    algorithm: str = "admv",
    *,
    costs=None,
) -> Solution:
    """Compute an optimal schedule for ``chain`` on ``platform``.

    Parameters
    ----------
    chain:
        The linear task chain to protect.
    platform:
        Error rates and resilience costs.
    algorithm:
        Algorithm name or alias (see module docstring); default is the most
        general ``admv``.
    costs:
        Optional :class:`~repro.core.costs.CostProfile` with per-task
        checkpoint/verification/recovery costs (default: the platform's
        uniform scalars — the paper's model).

    Returns
    -------
    Solution
        Optimal expected makespan and an explicit schedule achieving it.

    Examples
    --------
    >>> from repro.chains import uniform_chain
    >>> from repro.platforms import HERA
    >>> sol = optimize(uniform_chain(10), HERA, algorithm="ADMV*")
    >>> sol.schedule.is_strict
    True
    """
    name = canonical_algorithm(algorithm)
    reg = _metrics()
    if not reg.enabled:
        return _DISPATCH[name](chain, platform, costs=costs)
    reg.counter(f"dp.solves.{name}").inc()
    with reg.timer("dp.solve").time():
        return _DISPATCH[name](chain, platform, costs=costs)
