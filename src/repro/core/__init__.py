"""Core algorithms: schedules, closed forms, dynamic programs, evaluators."""

from .closed_form import p_error, phi, segment_cost_guaranteed, t_lost
from .costs import CostProfile
from .dp_partial import optimize_partial
from .dp_single import optimize_single_level
from .dp_two_level import optimize_two_level
from .evaluator import MarkovEvaluation, error_free_time, evaluate_schedule
from .exhaustive import ACTION_SETS, enumerate_schedules, exhaustive_search
from .factors import PairFactors
from .result import Solution
from .schedule import Action, ActionCounts, Schedule
from .solver import ALGORITHMS, canonical_algorithm, optimize

__all__ = [
    "Action",
    "ActionCounts",
    "Schedule",
    "Solution",
    "CostProfile",
    "PairFactors",
    "optimize",
    "optimize_partial",
    "optimize_single_level",
    "optimize_two_level",
    "canonical_algorithm",
    "ALGORITHMS",
    "ACTION_SETS",
    "enumerate_schedules",
    "exhaustive_search",
    "evaluate_schedule",
    "error_free_time",
    "MarkovEvaluation",
    "p_error",
    "phi",
    "t_lost",
    "segment_cost_guaranteed",
]
