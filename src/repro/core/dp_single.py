"""Single-level dynamic program ``ADV*`` (paper Section IV baseline).

``ADV*`` uses only disk checkpoints (each still carrying its forced memory
checkpoint and guaranteed verification) plus additional guaranteed
verifications.  It is the simplification of the two-level DP of Section
III-A with no extra memory checkpoints: within a disk interval the last
memory checkpoint *is* the last disk checkpoint, so ``E_mem(d1, d1) = 0``
and the segment cost of eq. (4) is evaluated with ``m1 = d1``.

Recurrences::

    Everif1(d1, v2) = min_{d1 <= v1 < v2} Everif1(d1, v1) + E(d1, d1, v1, v2)
    Edisk(d2)       = min_{0 <= d1 < d2} Edisk(d1) + Everif1(d1, d2) + C_M + C_D

(the ``C_M`` shows up because every disk checkpoint is preceded by a memory
checkpoint that must be paid even though no standalone memory checkpoints
are placed).
"""

from __future__ import annotations

import numpy as np

from ..chains import TaskChain
from ..exceptions import SolverError
from ..platforms import Platform
from .costs import CostProfile
from .factors import PairFactors
from .result import Solution
from .schedule import Action, Schedule

__all__ = ["optimize_single_level"]


def optimize_single_level(
    chain: TaskChain,
    platform: Platform,
    *,
    costs: CostProfile | None = None,
) -> Solution:
    """Optimal single-level schedule (``ADV*``) for ``chain`` on ``platform``.

    ``costs`` optionally makes every cost position-dependent; the default
    reproduces the paper's uniform model.
    """
    n = chain.n
    F = PairFactors(chain, platform, costs)
    CM, CD = F.costs.CM, F.costs.CD

    # everif1[d1, v2] and its argmin table.
    everif1 = np.full((n + 1, n + 1), np.inf)
    arg_verif = np.full((n + 1, n + 1), -1, dtype=np.int32)

    for d1 in range(n + 1):
        K1 = F.rd_eff(d1)  # E_mem(d1, d1) = 0
        rm = F.rm_eff(d1)  # the memory rollback target is the disk ckpt
        row = everif1[d1]
        row[d1] = 0.0
        for v2 in range(d1 + 1, n + 1):
            lo = d1
            cand = (
                row[lo:v2]
                + F.base_g[lo:v2, v2]
                + F.cK1[lo:v2, v2] * K1
                + F.etm1[lo:v2, v2] * row[lo:v2]
                + F.esm1[lo:v2, v2] * rm
            )
            k = int(np.argmin(cand))
            row[v2] = float(cand[k])
            arg_verif[d1, v2] = lo + k

    Edisk = np.full(n + 1, np.inf)
    arg_disk = np.full(n + 1, -1, dtype=np.int32)
    Edisk[0] = 0.0
    for d2 in range(1, n + 1):
        cand = Edisk[:d2] + everif1[:d2, d2] + CM[d2] + CD[d2]
        k = int(np.argmin(cand))
        Edisk[d2] = float(cand[k])
        arg_disk[d2] = k

    schedule = _extract_schedule(n, arg_disk, arg_verif)
    return Solution(
        algorithm="adv_star",
        chain=chain,
        platform=platform,
        expected_time=float(Edisk[n]),
        schedule=schedule,
        diagnostics={"Edisk": Edisk, "Everif1": everif1},
    )


def _extract_schedule(
    n: int, arg_disk: np.ndarray, arg_verif: np.ndarray
) -> Schedule:
    """Backtrack: disk positions, then verification chains inside each."""
    levels = np.zeros(n, dtype=np.int8)
    d2 = n
    while d2 > 0:
        d1 = int(arg_disk[d2])
        if d1 < 0 or d1 >= d2:
            raise SolverError(f"inconsistent disk backtrack at d2={d2}: {d1}")
        levels[d2 - 1] = int(Action.DISK)
        v2 = d2
        while v2 > d1:
            v1 = int(arg_verif[d1, v2])
            if v1 < 0 or v1 >= v2:
                raise SolverError(
                    f"inconsistent verification backtrack at (d1={d1}, v2={v2})"
                )
            if v2 != d2:
                levels[v2 - 1] = max(levels[v2 - 1], int(Action.VERIFY))
            v2 = v1
        d2 = d1
    return Schedule(levels)
