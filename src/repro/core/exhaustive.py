"""Brute-force optimal schedules for small chains.

Enumerates every valid schedule (each of the first ``n-1`` tasks takes one of
the five actions, the final task is always ``DISK``) and evaluates each with
the exact Markov evaluator.  Complexity ``O(5^{n-1})`` schedules — usable up
to ``n ≈ 8`` — which is exactly what is needed to certify the polynomial
dynamic programs on small instances.

The action set can be restricted to mirror each algorithm variant:

* ``ADV*``   → ``{NONE, VERIFY, DISK}`` with ``memory == disk`` positions;
* ``ADMV*``  → ``{NONE, VERIFY, MEMORY, DISK}``;
* ``ADMV``   → all five actions.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError
from ..platforms import Platform
from .evaluator import evaluate_schedule
from .schedule import Action, Schedule

__all__ = ["enumerate_schedules", "exhaustive_search", "ACTION_SETS"]

#: Allowed per-task action sets per algorithm variant.
ACTION_SETS: dict[str, tuple[Action, ...]] = {
    "adv_star": (Action.NONE, Action.VERIFY, Action.DISK),
    "admv_star": (Action.NONE, Action.VERIFY, Action.MEMORY, Action.DISK),
    "admv": (
        Action.NONE,
        Action.PARTIAL,
        Action.VERIFY,
        Action.MEMORY,
        Action.DISK,
    ),
}

#: Safety bound: 5^(MAX_N-1) evaluations is already ~2e6 Markov solves.
MAX_N = 10


def enumerate_schedules(
    n: int, actions: Sequence[Action] = ACTION_SETS["admv"]
) -> Iterator[Schedule]:
    """Yield every schedule of ``n`` tasks using ``actions``, final = DISK."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    for combo in itertools.product(actions, repeat=n - 1):
        yield Schedule(list(combo) + [Action.DISK])


def exhaustive_search(
    chain: TaskChain,
    platform: Platform,
    *,
    algorithm: str = "admv",
    max_n: int = MAX_N,
    costs=None,
) -> tuple[float, Schedule]:
    """Return ``(optimal expected time, optimal schedule)`` by brute force.

    Parameters
    ----------
    algorithm:
        Which action set to enumerate (``adv_star``, ``admv_star`` or
        ``admv``) — see :data:`ACTION_SETS`.
    max_n:
        Refuse chains longer than this (exponential blow-up guard).

    Notes
    -----
    Ties are broken in enumeration order, which prefers weaker actions on
    earlier tasks; the DP may legitimately return a different schedule with
    the same expected time, so tests compare *values*, not schedules.
    """
    try:
        actions = ACTION_SETS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ACTION_SETS))
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; expected one of: {known}"
        ) from None
    if chain.n > max_n:
        raise InvalidParameterError(
            f"exhaustive search limited to n <= {max_n} tasks (got {chain.n}); "
            "use the dynamic programs for larger chains"
        )

    best_value = np.inf
    best_schedule: Schedule | None = None
    for schedule in enumerate_schedules(chain.n, actions):
        value = evaluate_schedule(
            chain, platform, schedule, costs=costs
        ).expected_time
        if value < best_value:
            best_value = value
            best_schedule = schedule
    assert best_schedule is not None  # n >= 1 always yields one schedule
    return float(best_value), best_schedule
