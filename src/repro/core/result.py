"""Common result type returned by the optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chains import TaskChain
from ..platforms import Platform
from .schedule import ActionCounts, Schedule

__all__ = ["Solution"]


@dataclass(frozen=True)
class Solution:
    """Outcome of an optimization run.

    Attributes
    ----------
    algorithm:
        Canonical algorithm name (``"adv_star"``, ``"admv_star"``,
        ``"admv"``, or ``"exhaustive"``).
    chain, platform:
        The instance that was solved.
    expected_time:
        Optimal expected makespan ``E_disk(n)`` in seconds, including the
        final verification + checkpoints.
    schedule:
        An optimal placement achieving ``expected_time``.
    diagnostics:
        Optimizer-specific extras (table sizes, timing, ...).
    """

    algorithm: str
    chain: TaskChain
    platform: Platform
    expected_time: float
    schedule: Schedule
    diagnostics: dict = field(default_factory=dict, compare=False)

    @property
    def normalized_makespan(self) -> float:
        """Expected makespan over error-free work (the paper's y-axis)."""
        return self.expected_time / self.chain.total_weight

    @property
    def overhead(self) -> float:
        """Fractional overhead above error-free execution."""
        return self.normalized_makespan - 1.0

    def counts(self) -> ActionCounts:
        """Checkpoint/verification counts of the optimal schedule."""
        return self.schedule.counts()

    def summary(self) -> str:
        """Multi-line report used by the CLI and the examples."""
        counts = self.counts()
        return "\n".join(
            [
                f"algorithm {self.algorithm} on {self.platform.name} "
                f"({self.chain.name})",
                f"  expected makespan: {self.expected_time:.2f}s "
                f"(normalized {self.normalized_makespan:.4f})",
                f"  disk checkpoints:        {counts.disk}",
                f"  memory checkpoints:      {counts.memory}",
                f"  guaranteed verifications: {counts.guaranteed}",
                f"  partial verifications:    {counts.partial}",
                f"  placement: {self.schedule.to_string()}",
            ]
        )
