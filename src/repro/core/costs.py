"""Heterogeneous (per-task) resilience costs — an extension of the paper.

The paper assumes uniform costs: one ``C_D``, ``C_M``, ``V*``, ``V`` for
every task.  On real platforms the checkpoint and verification costs scale
with each task's *output size*, which varies along the chain (e.g. a mesh
refinement step multiplies the state).  The dynamic programs accommodate
position-dependent costs without any structural change: every cost enters
the recurrences indexed by the position where it is paid —

* ``C_D[d2]`` / ``C_M[m2]`` at the checkpointed task,
* ``V*[v2]`` / ``V[p2]`` at the verified task,
* ``R_D[d1]`` / ``R_M[m1]`` at the rollback target
  (``R_*[0] = 0``: the virtual ``T0`` restarts for free).

A :class:`CostProfile` carries those six arrays; passing ``costs=None``
everywhere reproduces the paper's uniform model exactly (and the test
suite pins that equivalence).  The exhaustive search and Markov evaluator
accept the same profile, so heterogeneous optimality is certified by the
same oracles as the uniform case.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..chains import TaskChain
from ..exceptions import InvalidParameterError
from ..platforms import Platform

__all__ = ["CostProfile"]


def _as_cost_array(
    values: Sequence[float] | np.ndarray, n: int, what: str
) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape != (n,):
        raise InvalidParameterError(
            f"{what} must have one entry per task ({n}), got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)) or np.any(arr < 0.0):
        raise InvalidParameterError(f"{what} entries must be >= 0 and finite")
    # prepend the virtual T0 slot (index 0)
    out = np.concatenate(([0.0], arr))
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class CostProfile:
    """Per-position resilience costs (arrays of length ``n + 1``).

    Index ``i`` is the cost *at task* ``T_i``; index 0 is the virtual
    ``T0`` whose recovery costs are zero by construction.  Build instances
    through :meth:`uniform`, :meth:`from_arrays` or
    :meth:`proportional_to_output` rather than the raw constructor.
    """

    CD: np.ndarray
    CM: np.ndarray
    RD: np.ndarray
    RM: np.ndarray
    Vg: np.ndarray
    Vp: np.ndarray

    def __post_init__(self) -> None:
        n = self.CD.shape[0]
        for name in ("CD", "CM", "RD", "RM", "Vg", "Vp"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise InvalidParameterError(
                    f"cost arrays must share one length, {name} differs"
                )
        if self.RD[0] != 0.0 or self.RM[0] != 0.0:
            raise InvalidParameterError(
                "recovery costs at the virtual T0 must be zero (use "
                "with_boundary_recovery() to price a subchain that opens "
                "at a checkpoint of a longer chain)"
            )

    @property
    def n(self) -> int:
        """Number of (real) tasks covered."""
        return int(self.CD.shape[0]) - 1

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n: int, platform: Platform) -> "CostProfile":
        """The paper's model: every task pays the platform scalars."""
        return cls.from_arrays(
            n,
            CD=np.full(n, platform.CD),
            CM=np.full(n, platform.CM),
            RD=np.full(n, platform.RD),
            RM=np.full(n, platform.RM),
            Vg=np.full(n, platform.Vg),
            Vp=np.full(n, platform.Vp),
        )

    @classmethod
    def from_arrays(
        cls,
        n: int,
        *,
        CD: Sequence[float],
        CM: Sequence[float],
        RD: Sequence[float] | None = None,
        RM: Sequence[float] | None = None,
        Vg: Sequence[float] | None = None,
        Vp: Sequence[float] | None = None,
    ) -> "CostProfile":
        """Explicit per-task arrays (one entry per task, 0-based).

        Defaults mirror the paper's conventions: ``RD = CD``, ``RM = CM``,
        ``V* = CM`` and ``V = V*/100``.
        """
        cd = _as_cost_array(CD, n, "CD")
        cm = _as_cost_array(CM, n, "CM")
        rd = _as_cost_array(RD, n, "RD") if RD is not None else cd
        rm = _as_cost_array(RM, n, "RM") if RM is not None else cm
        vg = _as_cost_array(Vg, n, "Vg") if Vg is not None else cm
        if Vp is not None:
            vp = _as_cost_array(Vp, n, "Vp")
        else:
            vp = vg / 100.0
            vp.setflags(write=False)
        return cls(CD=cd, CM=cm, RD=rd, RM=rm, Vg=vg, Vp=vp)

    @classmethod
    def scaled(
        cls, platform: Platform, multipliers: Sequence[float]
    ) -> "CostProfile":
        """Platform scalars scaled by a per-task multiplier (one per task).

        Unlike :meth:`proportional_to_output` the multipliers are taken
        *as given* (no mean normalisation): 1.0 means exactly the
        platform's scalar costs, so a workflow's per-task multipliers
        keep their meaning when tasks are permuted — the profile for a
        serialisation is just the multipliers in that order.  Checkpoint,
        recovery and verification costs all scale together (output-size
        semantics).
        """
        mult = np.asarray(multipliers, dtype=np.float64)
        if mult.ndim != 1 or mult.size < 1:
            raise InvalidParameterError(
                "multipliers must be a 1-D sequence with one entry per task"
            )
        if not np.all(np.isfinite(mult)) or np.any(mult <= 0.0):
            raise InvalidParameterError("multipliers must be > 0 and finite")
        return cls.from_arrays(
            mult.size,
            CD=platform.CD * mult,
            CM=platform.CM * mult,
            RD=platform.RD * mult,
            RM=platform.RM * mult,
            Vg=platform.Vg * mult,
            Vp=platform.Vp * mult,
        )

    @classmethod
    def proportional_to_output(
        cls,
        chain: TaskChain,
        platform: Platform,
        output_sizes: Sequence[float],
    ) -> "CostProfile":
        """Scale every cost by each task's relative output size.

        ``output_sizes`` (one positive number per task, arbitrary units) is
        normalised so its *mean* is 1, preserving the platform's average
        cost; checkpoint, recovery and verification costs all scale with
        the data volume they move or inspect.
        """
        sizes = np.asarray(output_sizes, dtype=np.float64)
        if sizes.shape != (chain.n,):
            raise InvalidParameterError(
                f"output_sizes must have one entry per task ({chain.n})"
            )
        if not np.all(np.isfinite(sizes)) or np.any(sizes <= 0.0):
            raise InvalidParameterError("output sizes must be > 0 and finite")
        rel = sizes / sizes.mean()
        return cls.from_arrays(
            chain.n,
            CD=platform.CD * rel,
            CM=platform.CM * rel,
            RD=platform.RD * rel,
            RM=platform.RM * rel,
            Vg=platform.Vg * rel,
            Vp=platform.Vp * rel,
        )

    def with_boundary_recovery(
        self, rd0: float, rm0: float = 0.0
    ) -> "CostProfile":
        """Price the virtual ``T0`` restart at ``rd0`` / ``rm0``.

        By default ``T0`` restarts for free (the application start needs no
        checkpoint load), and :meth:`__post_init__` enforces that for every
        ordinary construction path.  This factory is the one sanctioned
        exception: when a chain is a *disk interval* of a longer chain,
        rolling back to the interval start re-loads the disk checkpoint
        that opened it, so the boundary recovery costs the platform's
        ``R_D`` (and ``R_M`` for the memory copy every disk checkpoint
        carries).  The optimum of the full chain then decomposes exactly
        into the sum of its disk intervals priced this way — an identity
        the test suite pins against all three DPs (at float-rounding
        precision: the sums associate differently).
        """
        for name, value in (("rd0", rd0), ("rm0", rm0)):
            if not (np.isfinite(value) and value >= 0.0):
                raise InvalidParameterError(
                    f"boundary recovery {name} must be >= 0 and finite, "
                    f"got {value!r}"
                )
        rd = self.RD.copy()
        rd[0] = rd0
        rd.setflags(write=False)
        rm = self.RM.copy()
        rm[0] = rm0
        rm.setflags(write=False)
        zero_rd = self.RD.copy()
        zero_rd[0] = 0.0
        zero_rm = self.RM.copy()
        zero_rm[0] = 0.0
        profile = CostProfile(
            CD=self.CD, CM=self.CM, RD=zero_rd, RM=zero_rm,
            Vg=self.Vg, Vp=self.Vp,
        )
        # bypass the frozen-dataclass validation deliberately: nonzero
        # boundary recovery is valid only through this factory
        object.__setattr__(profile, "RD", rd)
        object.__setattr__(profile, "RM", rm)
        return profile

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_uniform(self) -> bool:
        """True when every task shares the same costs (paper model)."""
        return all(
            np.all(getattr(self, name)[1:] == getattr(self, name)[1])
            for name in ("CD", "CM", "RD", "RM", "Vg", "Vp")
        )

    def describe(self) -> str:
        """Short human-readable summary."""
        if self.is_uniform():
            return (
                f"uniform costs over {self.n} tasks: CD={self.CD[1]:g}, "
                f"CM={self.CM[1]:g}, V*={self.Vg[1]:g}, V={self.Vp[1]:g}"
            )
        return (
            f"per-task costs over {self.n} tasks: CD in "
            f"[{self.CD[1:].min():g}, {self.CD[1:].max():g}], CM in "
            f"[{self.CM[1:].min():g}, {self.CM[1:].max():g}]"
        )
