"""Schedule model: which resilience action follows each task.

The model admits exactly five mutually exclusive choices at the end of each
task, naturally ordered by "strength" (each level includes everything the
previous one does, except that partial and guaranteed verifications are
alternatives):

====================  =====================================================
:attr:`Action.NONE`      nothing — proceed to the next task
:attr:`Action.PARTIAL`   partial verification (cost ``V``, recall ``r``)
:attr:`Action.VERIFY`    guaranteed verification (cost ``V*``)
:attr:`Action.MEMORY`    guaranteed verification + memory checkpoint
:attr:`Action.DISK`      guaranteed verification + memory + disk checkpoint
====================  =====================================================

Encoding the action as a single level per task makes the structural
invariants of the paper (disk ⇒ memory ⇒ guaranteed verification) true *by
construction*; the only remaining validity rules are value-range checks and,
in strict mode, that the final task is disk-checkpointed (the dynamic
programs always produce this, since ``Edisk(n)`` is the objective).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import InvalidScheduleError

__all__ = ["Action", "Schedule", "ActionCounts"]


class Action(enum.IntEnum):
    """Resilience action taken at the end of a task (see module docstring)."""

    NONE = 0
    PARTIAL = 1
    VERIFY = 2
    MEMORY = 3
    DISK = 4

    @property
    def has_verification(self) -> bool:
        """True if any verification (partial or guaranteed) happens."""
        return self != Action.NONE

    @property
    def has_guaranteed_verification(self) -> bool:
        return self >= Action.VERIFY

    @property
    def has_partial_verification(self) -> bool:
        return self == Action.PARTIAL

    @property
    def has_memory_checkpoint(self) -> bool:
        return self >= Action.MEMORY

    @property
    def has_disk_checkpoint(self) -> bool:
        return self == Action.DISK

    @property
    def symbol(self) -> str:
        """One-character marker used in ASCII placement diagrams."""
        return {
            Action.NONE: ".",
            Action.PARTIAL: "p",
            Action.VERIFY: "v",
            Action.MEMORY: "M",
            Action.DISK: "D",
        }[self]


class ActionCounts(dict):
    """Counts of each action category in a schedule.

    Keys: ``disk``, ``memory``, ``guaranteed``, ``partial``.  ``memory``
    counts *all* memory checkpoints (including those forced by disk
    checkpoints) and ``guaranteed`` all guaranteed verifications (including
    those forced by memory checkpoints), matching the paper's figure legends.
    """

    @property
    def disk(self) -> int:
        return self["disk"]

    @property
    def memory(self) -> int:
        return self["memory"]

    @property
    def guaranteed(self) -> int:
        return self["guaranteed"]

    @property
    def partial(self) -> int:
        return self["partial"]


class Schedule:
    """Immutable assignment of an :class:`Action` to each task ``T1 .. Tn``.

    Parameters
    ----------
    actions:
        One action (or its integer value) per task, 0-based storage for task
        ``T_{i+1}``.  Public accessors use the paper's 1-based indices.
    """

    __slots__ = ("_levels",)

    def __init__(self, actions: Iterable[Action | int]) -> None:
        levels = np.asarray([int(a) for a in actions], dtype=np.int8)
        if levels.ndim != 1 or levels.size == 0:
            raise InvalidScheduleError("a schedule needs at least one task")
        if levels.min() < 0 or levels.max() > int(Action.DISK):
            raise InvalidScheduleError(
                f"action levels must be in [0, {int(Action.DISK)}]"
            )
        levels.setflags(write=False)
        self._levels = levels

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(
        cls,
        n: int,
        *,
        disk: Sequence[int] = (),
        memory: Sequence[int] = (),
        guaranteed: Sequence[int] = (),
        partial: Sequence[int] = (),
    ) -> "Schedule":
        """Build a schedule from 1-based position sets.

        Positions may overlap in the implied direction (a disk position is
        automatically a memory/verified position); listing a position both as
        ``partial`` and in any guaranteed-verification set is rejected since
        the two verification types are alternatives.
        """
        levels = np.zeros(n, dtype=np.int8)

        def _apply(positions: Sequence[int], level: Action) -> None:
            for p in positions:
                if not 1 <= p <= n:
                    raise InvalidScheduleError(
                        f"position {p} out of range [1, {n}]"
                    )
                levels[p - 1] = max(levels[p - 1], int(level))

        _apply(guaranteed, Action.VERIFY)
        _apply(memory, Action.MEMORY)
        _apply(disk, Action.DISK)
        for p in partial:
            if not 1 <= p <= n:
                raise InvalidScheduleError(f"position {p} out of range [1, {n}]")
            if levels[p - 1] >= int(Action.VERIFY):
                raise InvalidScheduleError(
                    f"task T{p} cannot carry both a partial and a guaranteed "
                    "verification"
                )
            levels[p - 1] = int(Action.PARTIAL)
        return cls(levels)

    @classmethod
    def final_only(cls, n: int) -> "Schedule":
        """The minimal strict schedule: everything at ``Tn``, nothing else."""
        levels = np.zeros(n, dtype=np.int8)
        levels[-1] = int(Action.DISK)
        return cls(levels)

    # ------------------------------------------------------------------
    # container behaviour
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks covered by the schedule."""
        return int(self._levels.size)

    def __len__(self) -> int:
        return self.n

    def action(self, index: int) -> Action:
        """Action after task ``T_index`` (1-based)."""
        if not 1 <= index <= self.n:
            raise IndexError(f"task index must be in [1, {self.n}], got {index}")
        return Action(int(self._levels[index - 1]))

    def __getitem__(self, index: int) -> Action:
        return self.action(index)

    def __iter__(self) -> Iterator[Action]:
        return (Action(int(v)) for v in self._levels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return bool(np.array_equal(self._levels, other._levels))

    def __hash__(self) -> int:
        return hash(self._levels.tobytes())

    def __repr__(self) -> str:
        return f"Schedule({self.to_string()!r})"

    # ------------------------------------------------------------------
    # position sets (all 1-based, ascending)
    # ------------------------------------------------------------------
    def _positions(self, mask: np.ndarray) -> list[int]:
        return [int(i) + 1 for i in np.flatnonzero(mask)]

    @property
    def disk_positions(self) -> list[int]:
        """Tasks followed by a disk checkpoint."""
        return self._positions(self._levels == int(Action.DISK))

    @property
    def memory_positions(self) -> list[int]:
        """Tasks followed by a memory checkpoint (disk ones included)."""
        return self._positions(self._levels >= int(Action.MEMORY))

    @property
    def guaranteed_positions(self) -> list[int]:
        """Tasks followed by a guaranteed verification (ckpt ones included)."""
        return self._positions(self._levels >= int(Action.VERIFY))

    @property
    def partial_positions(self) -> list[int]:
        """Tasks followed by a partial verification."""
        return self._positions(self._levels == int(Action.PARTIAL))

    @property
    def verified_positions(self) -> list[int]:
        """Tasks followed by any verification — the simulator's stop points."""
        return self._positions(self._levels >= int(Action.PARTIAL))

    # ------------------------------------------------------------------
    # queries used by evaluators / simulators
    # ------------------------------------------------------------------
    def last_memory_at_or_before(self, index: int) -> int:
        """Last memory-checkpointed position ``<= index`` (0 = virtual T0)."""
        for p in range(index, 0, -1):
            if self._levels[p - 1] >= int(Action.MEMORY):
                return p
        return 0

    def last_disk_at_or_before(self, index: int) -> int:
        """Last disk-checkpointed position ``<= index`` (0 = virtual T0)."""
        for p in range(index, 0, -1):
            if self._levels[p - 1] == int(Action.DISK):
                return p
        return 0

    def counts(self) -> ActionCounts:
        """Counts per category, as plotted in Figures 5, 7 and 8."""
        lv = self._levels
        return ActionCounts(
            disk=int(np.count_nonzero(lv == int(Action.DISK))),
            memory=int(np.count_nonzero(lv >= int(Action.MEMORY))),
            guaranteed=int(np.count_nonzero(lv >= int(Action.VERIFY))),
            partial=int(np.count_nonzero(lv == int(Action.PARTIAL))),
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, *, strict: bool = True) -> None:
        """Check model invariants; raise :class:`InvalidScheduleError`.

        The level encoding already guarantees disk ⇒ memory ⇒ guaranteed
        verification.  In strict mode (what the optimizers produce and the
        evaluators require) the final task must be disk-checkpointed, so the
        application output is safely stored and every silent error is
        eventually detected.
        """
        if strict and self._levels[-1] != int(Action.DISK):
            raise InvalidScheduleError(
                "strict schedules must disk-checkpoint the final task "
                f"(T{self.n} has action {Action(int(self._levels[-1])).name})"
            )

    @property
    def is_strict(self) -> bool:
        """True if :meth:`validate` passes in strict mode."""
        return self._levels[-1] == int(Action.DISK)

    # ------------------------------------------------------------------
    # serialization / display
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """Compact one-char-per-task form, e.g. ``"..p.v..MpD"``."""
        return "".join(Action(int(v)).symbol for v in self._levels)

    @classmethod
    def from_string(cls, text: str) -> "Schedule":
        """Inverse of :meth:`to_string`."""
        symbol_to_action = {a.symbol: a for a in Action}
        try:
            return cls([symbol_to_action[c] for c in text])
        except KeyError as exc:
            raise InvalidScheduleError(
                f"unknown schedule symbol {exc.args[0]!r} "
                f"(expected one of {''.join(a.symbol for a in Action)!r})"
            ) from None

    def as_dict(self) -> dict:
        """JSON-serializable representation (position lists, 1-based)."""
        return {
            "n": self.n,
            "disk": self.disk_positions,
            "memory": self.memory_positions,
            "guaranteed": self.guaranteed_positions,
            "partial": self.partial_positions,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Schedule":
        """Rebuild a schedule from :meth:`as_dict` output."""
        try:
            return cls.from_positions(
                int(doc["n"]),
                disk=doc.get("disk", ()),
                memory=doc.get("memory", ()),
                guaranteed=doc.get("guaranteed", ()),
                partial=doc.get("partial", ()),
            )
        except KeyError as exc:
            raise InvalidScheduleError(
                f"schedule document is missing field {exc.args[0]!r}"
            ) from exc

    def levels_array(self) -> np.ndarray:
        """Read-only view of the raw level array (0-based, int8)."""
        return self._levels
