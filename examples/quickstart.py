#!/usr/bin/env python3
"""Quickstart: protect a 20-task workflow on the Hera platform.

Covers the core API in ~30 lines of logic:

1. build a task chain (the paper's Uniform workload);
2. compute the optimal two-level schedule with partial verifications;
3. print the expected makespan, the placement counts and a placement map;
4. cross-check the optimizer with the exact Markov evaluator;
5. sanity-check with a quick Monte-Carlo fault-injection campaign.
"""

from repro import HERA, evaluate_schedule, optimize, uniform_chain
from repro.analysis import placement_diagram
from repro.simulation import run_monte_carlo


def main() -> None:
    # 25000 s of work split over 20 equal tasks (paper Section IV setup).
    chain = uniform_chain(20)
    print(chain.describe())
    print(HERA.describe())
    print()

    # The full algorithm of the paper: disk + memory checkpoints,
    # guaranteed + partial verifications.
    solution = optimize(chain, HERA, algorithm="admv")
    print(solution.summary())
    print()
    print(placement_diagram(solution.schedule, title="optimal placement"))
    print()

    # The DP value must equal the exact expected makespan of its schedule.
    markov = evaluate_schedule(chain, HERA, solution.schedule)
    gap = abs(solution.expected_time - markov.expected_time)
    print(f"Markov cross-check: E[T] = {markov.expected_time:.2f}s "
          f"(DP agreement within {gap:.2e}s)")
    print()
    print(markov.render_breakdown(chain))
    print()

    # Fault-injection simulation: the sample mean must bracket the analytic
    # value. 500 runs keeps this example fast; increase for tighter CIs.
    mc = run_monte_carlo(
        chain, HERA, solution.schedule,
        runs=500, seed=1, analytic=solution.expected_time,
    )
    print(mc.report())


if __name__ == "__main__":
    main()
