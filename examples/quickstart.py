#!/usr/bin/env python3
"""Quickstart: protect a 20-task workflow on the Hera platform.

Covers the core API in ~30 lines of logic:

1. build a task chain (the paper's Uniform workload);
2. compute the optimal two-level schedule with partial verifications;
3. print the expected makespan, the placement counts and a placement map;
4. cross-check the optimizer with the exact Markov evaluator;
5. validate with a batched Monte-Carlo fault-injection campaign;
6. certify the expectation to a target precision with the adaptive
   orchestrator (``target_ci=``): rounds of replications run until the
   relative CI half-width on the mean hits the target, so the campaign
   spends exactly the replications the precision requires.

Batched validation
------------------
``run_monte_carlo`` defaults to ``engine="batch"``: the schedule is
compiled to flat segment arrays and *all* replications advance through
them simultaneously with NumPy (see :mod:`repro.simulation.batch`), so
a 20,000-replication campaign costs tens of milliseconds where the
scalar loop needed minutes.  The scalar engine remains available as
``engine="scalar"`` — it is the oracle the batched engine is bitwise
cross-validated against in the test suite — and big campaigns can shard
across processes with ``n_jobs=4``.
"""

from repro import HERA, evaluate_schedule, optimize, uniform_chain
from repro.analysis import placement_diagram
from repro.simulation import run_monte_carlo


def main() -> None:
    # 25000 s of work split over 20 equal tasks (paper Section IV setup).
    chain = uniform_chain(20)
    print(chain.describe())
    print(HERA.describe())
    print()

    # The full algorithm of the paper: disk + memory checkpoints,
    # guaranteed + partial verifications.
    solution = optimize(chain, HERA, algorithm="admv")
    print(solution.summary())
    print()
    print(placement_diagram(solution.schedule, title="optimal placement"))
    print()

    # The DP value must equal the exact expected makespan of its schedule.
    markov = evaluate_schedule(chain, HERA, solution.schedule)
    gap = abs(solution.expected_time - markov.expected_time)
    print(f"Markov cross-check: E[T] = {markov.expected_time:.2f}s "
          f"(DP agreement within {gap:.2e}s)")
    print()
    print(markov.render_breakdown(chain))
    print()

    # Batched fault-injection simulation: the analytic value must fall
    # inside the sample CI.  The vectorized engine makes 20k replications
    # cheaper than 500 used to be on the scalar loop.
    mc = run_monte_carlo(
        chain, HERA, solution.schedule,
        runs=20_000, seed=1, analytic=solution.expected_time,
    )
    print(mc.report())
    print()

    # Adaptive precision: let the orchestrator decide the replication
    # count — stop as soon as the mean is certified to ±1%.
    certified = run_monte_carlo(
        chain, HERA, solution.schedule,
        runs=100_000, seed=1, target_ci=0.01,
        analytic=solution.expected_time,
    )
    print(certified.report(show_breakdown=False))


if __name__ == "__main__":
    main()
