#!/usr/bin/env python3
"""Compare the three algorithms across the four Table I platforms.

Reproduces the headline numbers of the paper's Section IV at ``n = 50``
(Uniform pattern): the two-level algorithm ``ADMV*`` improves on the
single-level ``ADV*`` by ≈2% on Hera and ≈5% on Atlas, and partial
verifications (``ADMV``) matter most on Coastal SSD where every guaranteed
verification costs 180 s.

The paper's closing argument is quantified in the last column: percent
improvements translate into saved wall-clock hours per day of execution.
"""

from repro import optimize, uniform_chain
from repro.analysis import daily_savings_seconds, format_table, improvement
from repro.platforms import TABLE1_ROWS


def main() -> None:
    chain = uniform_chain(50)
    header = [
        "platform",
        "ADV*",
        "ADMV*",
        "ADMV",
        "2-level gain",
        "partial gain",
        "saved/day",
    ]
    rows = []
    for platform in TABLE1_ROWS:
        adv = optimize(chain, platform, algorithm="adv_star")
        admv_star = optimize(chain, platform, algorithm="admv_star")
        admv = optimize(chain, platform, algorithm="admv")
        rows.append(
            [
                platform.name,
                f"{adv.normalized_makespan:.4f}",
                f"{admv_star.normalized_makespan:.4f}",
                f"{admv.normalized_makespan:.4f}",
                f"{improvement(adv, admv_star):+.2%}",
                f"{improvement(admv_star, admv):+.2%}",
                f"{daily_savings_seconds(adv, admv) / 60:.0f} min",
            ]
        )
    print(format_table(header, rows, title="Uniform pattern, n = 50"))
    print()
    print("Reading: '2-level gain' is ADMV* vs ADV* (paper: ~2% on Hera,")
    print("~5% on Atlas); 'partial gain' is ADMV vs ADMV* (largest on")
    print("Coastal SSD); 'saved/day' converts the total ADV*->ADMV gain")
    print("into saved minutes per day of execution, the paper's closing")
    print("argument ('half an hour a day on Hera').")


if __name__ == "__main__":
    main()
