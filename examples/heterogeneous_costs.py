#!/usr/bin/env python3
"""Per-task checkpoint costs: an extension beyond the paper's model.

The paper prices every checkpoint and verification identically.  Real
workflows move different amounts of data at each boundary: a mesh
refinement step may multiply the state, a reduction shrinks it.  The DP
recurrences take position-dependent costs without any structural change
(see ``repro.core.costs``), and the same exhaustive/Markov oracles certify
optimality.

Scenario: a 12-task pipeline on a degraded Hera (5x the error rates,
as at end-of-life) whose state *grows* through the first half
(refinement) and *shrinks* through the second (reduction).  The
optimizer shifts checkpoints toward the cheap boundaries — compare with the
uniform-cost solution which spaces them evenly.
"""

import numpy as np

from repro import HERA, CostProfile, TaskChain, evaluate_schedule, optimize
from repro.analysis import format_table, placement_diagram

N = 12
PLATFORM = HERA.scaled_rates(5.0, name="Hera-degraded")


def main() -> None:
    chain = TaskChain([2000.0] * N, name="refine-then-reduce")

    # output sizes: grow 1 -> 6 then shrink back (relative units)
    sizes = np.concatenate([np.linspace(1.0, 10.0, N // 2),
                            np.linspace(10.0, 1.0, N // 2)])
    profile = CostProfile.proportional_to_output(chain, PLATFORM, sizes)
    print(profile.describe())
    print()

    uniform_sol = optimize(chain, PLATFORM, algorithm="admv")
    hetero_sol = optimize(chain, PLATFORM, algorithm="admv", costs=profile)

    print(placement_diagram(
        uniform_sol.schedule,
        title=f"uniform costs   — E[T] = {uniform_sol.expected_time:.0f}s",
    ))
    print()
    print(placement_diagram(
        hetero_sol.schedule,
        title=f"per-task costs  — E[T] = {hetero_sol.expected_time:.0f}s",
    ))
    print()

    # what the uniform-cost schedule would really cost with true prices:
    uniform_on_true = evaluate_schedule(
        chain, PLATFORM, uniform_sol.schedule, costs=profile
    ).expected_time
    rows = [
        ["size-aware optimum", f"{hetero_sol.expected_time:.1f}"],
        ["uniform-cost schedule, true prices", f"{uniform_on_true:.1f}"],
        [
            "penalty for ignoring sizes",
            f"{(uniform_on_true / hetero_sol.expected_time - 1):+.2%}",
        ],
    ]
    print(format_table(["schedule", "E[makespan] (s)"], rows))
    print()
    print("The size-aware optimum checkpoints where the state is small")
    print("(start and end of the pipeline) and verifies more in the bulge.")


if __name__ == "__main__":
    main()
