#!/usr/bin/env python3
"""How the workload shape drives the optimal protection (Figs. 6-8).

Solves ``ADMV`` for the three paper workloads on Hera and renders the
placement maps:

* **Uniform** — equi-spaced memory checkpoints + guaranteed verifications
  with partial verifications in between;
* **Decrease** (dense solver profile) — the heavy head is checkpointed
  aggressively, the light tail is barely worth verifying;
* **HighLow** (10% of tasks hold 60% of the weight) — memory checkpoints
  are mandatory on each heavy task, the light tail mirrors Uniform.
"""

from repro import HERA, make_chain, optimize
from repro.analysis import format_table, placement_diagram

N = 40  # a bit below the paper's 50 to keep this example snappy


def main() -> None:
    rows = []
    for pattern in ("uniform", "decrease", "highlow"):
        chain = make_chain(pattern, N)
        solution = optimize(chain, HERA, algorithm="admv")
        counts = solution.counts()
        rows.append(
            [
                pattern,
                f"{solution.normalized_makespan:.4f}",
                counts.disk,
                counts.memory,
                counts.guaranteed,
                counts.partial,
            ]
        )
        print(
            placement_diagram(
                solution.schedule,
                title=(
                    f"{pattern} (n={N}) on Hera — "
                    f"E[T] = {solution.expected_time:.0f}s"
                ),
            )
        )
        print()

    print(
        format_table(
            ["pattern", "norm. makespan", "#disk", "#mem", "#guar", "#partial"],
            rows,
            title="ADMV on Hera, all patterns",
        )
    )
    print()
    print("Note how the Decrease pattern concentrates every checkpoint on")
    print("the early heavy tasks, while HighLow protects each of the four")
    print("heavy head tasks individually — exactly the paper's Figures 7-8.")


if __name__ == "__main__":
    main()
