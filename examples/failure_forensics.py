#!/usr/bin/env python3
"""Watch the resilience machinery react to injected failures.

Runs a single simulated execution on an unreliable platform with full
event tracing, then replays two *scripted* what-if scenarios that show the
two rollback paths of the model:

* a fail-stop error mid-segment => disk recovery, everything re-executed;
* a silent error missed by a partial verification => caught later by the
  guaranteed verification, memory rollback.
"""

from repro import Platform, TaskChain, optimize
from repro.simulation import (
    PoissonErrorSource,
    ScriptedErrorSource,
    simulate_run,
)

PLATFORM = Platform.from_costs(
    "unreliable", lf=1.5e-3, ls=4e-3, CD=40.0, CM=6.0, r=0.8,
    partial_cost_ratio=20.0,
)
CHAIN = TaskChain([120.0, 80.0, 150.0, 100.0, 90.0], name="pipeline-5")


def main() -> None:
    solution = optimize(CHAIN, PLATFORM, algorithm="admv")
    print(solution.summary())
    print()

    # --- stochastic run ---------------------------------------------------
    result = simulate_run(
        CHAIN,
        PLATFORM,
        solution.schedule,
        PoissonErrorSource(PLATFORM, rng=2024),
        record_trace=True,
    )
    print(
        f"stochastic run: makespan {result.makespan:.1f}s, "
        f"{result.fail_stop_errors} fail-stop / {result.silent_errors} "
        f"silent errors, {result.attempts} segment attempts"
    )
    print(result.trace.render(limit=25))
    print()

    # --- scripted what-if: fail-stop mid-chain ----------------------------
    scripted = ScriptedErrorSource(fail_stops=[None, 0.5])
    result = simulate_run(
        CHAIN, PLATFORM, solution.schedule, scripted, record_trace=True
    )
    print("what-if: a fail-stop strikes half-way through the second segment")
    print(result.trace.render())
    print()

    # --- scripted what-if: silent error slips through a partial verif -----
    scripted = ScriptedErrorSource(silents=[True], detections=[False])
    result = simulate_run(
        CHAIN, PLATFORM, solution.schedule, scripted, record_trace=True
    )
    print("what-if: a silent error is missed once, caught downstream")
    print(result.trace.render())


if __name__ == "__main__":
    main()
