#!/usr/bin/env python3
"""Bring your own cluster: build a platform from measured numbers and
study the sensitivity of the optimal schedule.

Scenario: a 400-node cluster where each node has a 20-year fail-stop MTBF
and a 6-year silent-corruption MTBF; a parallel file system writes a
checkpoint in 240 s while an in-memory (buddy) copy takes 8 s.

The example then answers three operational questions:

1. how much does the DP schedule beat Young/Daly periodic checkpointing?
2. what happens if silent errors are 10x more frequent than measured?
3. how does the optimal placement shift as disk checkpoints get cheaper
   (e.g. burst buffers)?
"""

from repro import Platform, optimize, uniform_chain
from repro.analysis import format_table, improvement
from repro.baselines import solve_periodic
from repro.platforms import SECONDS_PER_YEAR, platform_rate_from_node_mtbf


def main() -> None:
    cluster = Platform.from_costs(
        "my-cluster",
        lf=platform_rate_from_node_mtbf(20 * SECONDS_PER_YEAR, nodes=400),
        ls=platform_rate_from_node_mtbf(6 * SECONDS_PER_YEAR, nodes=400),
        CD=240.0,
        CM=8.0,
        nodes=400,
    )
    print(cluster.describe())
    print()

    chain = uniform_chain(40, total_weight=36000.0)  # a 10-hour pipeline

    # 1. DP versus periodic baselines -----------------------------------
    best = optimize(chain, cluster, algorithm="admv")
    periodic1 = solve_periodic(chain, cluster, two_level=False)
    periodic2 = solve_periodic(chain, cluster, two_level=True)
    rows = [
        [sol.algorithm, f"{sol.normalized_makespan:.4f}",
         f"{improvement(periodic1, sol):+.2%}"]
        for sol in (periodic1, periodic2, best)
    ]
    print(format_table(
        ["policy", "norm. makespan", "vs Daly disk-only"],
        rows,
        title="DP vs Young/Daly periodic checkpointing",
    ))
    print()

    # 2. silent-error sensitivity ---------------------------------------
    rows = []
    for factor in (1.0, 3.0, 10.0):
        hot = cluster.with_overrides(ls=cluster.ls * factor, name=f"ls x{factor:g}")
        sol = optimize(chain, hot, algorithm="admv")
        c = sol.counts()
        rows.append(
            [f"x{factor:g}", f"{sol.normalized_makespan:.4f}",
             c.memory, c.guaranteed, c.partial]
        )
    print(format_table(
        ["lambda_s", "norm. makespan", "#mem", "#guar", "#partial"],
        rows,
        title="silent-rate sensitivity (ADMV)",
    ))
    print()

    # 3. disk-cost sensitivity ------------------------------------------
    rows = []
    for cd in (960.0, 240.0, 60.0, 15.0):
        variant = cluster.with_overrides(CD=cd, RD=cd, name=f"CD={cd:g}")
        sol = optimize(chain, variant, algorithm="admv")
        rows.append([f"{cd:g}", f"{sol.normalized_makespan:.4f}", sol.counts().disk])
    print(format_table(
        ["C_D (s)", "norm. makespan", "#disk ckpts"],
        rows,
        title="disk checkpoint cost sensitivity (ADMV)",
    ))
    print()
    print("Cheaper disk checkpoints pull disk checkpoints into the middle")
    print("of the chain; with a slow file system the optimizer relies on")
    print("memory checkpoints + verifications instead.")


if __name__ == "__main__":
    main()
