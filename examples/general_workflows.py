#!/usr/bin/env python3
"""Beyond chains: general workflows (the paper's future-work direction).

Three scenarios:

1. a fork-join *analysis pipeline* DAG is serialised (every task uses the
   whole platform) with several topological-order heuristics, and the best
   serialisation is protected with the chain DP — the order matters because
   it changes which work sits behind each checkpoint;

2. a *generated* 20-task workflow (too wide to enumerate) is optimized
   with the metaheuristic order search: precedence-preserving moves over
   topological orders, screened with memoized frozen-schedule bounds
   instead of per-neighbor DP re-solves;

3. the NP-hard *join graph* case of Aupy et al. (APDCM'15): independent
   solver runs feeding one reduction step, fail-stop errors only, disk
   checkpoints only.  The exact evaluator, the exhaustive optimum and the
   local-search heuristic are compared (the defining twist: unprotected
   outputs stay vulnerable forever, unlike in a chain).
"""

from repro.analysis import format_table, placement_diagram
from repro.dag import (
    JoinInstance,
    WorkflowDAG,
    evaluate_join,
    exhaustive_join,
    generate,
    local_search_join,
    optimize_dag,
    search_order,
    threshold_join,
)
from repro.platforms import Platform

PLATFORM = Platform.from_costs(
    "cluster", lf=1.2e-3, ls=4e-3, CD=25.0, CM=4.0, r=0.8
)


def pipeline_dag() -> WorkflowDAG:
    """ingest -> {clean_a, clean_b} -> merge -> {model_x, model_y} -> report"""
    return WorkflowDAG(
        {
            "ingest": 60.0,
            "clean_a": 45.0,
            "clean_b": 80.0,
            "merge": 30.0,
            "model_x": 150.0,
            "model_y": 90.0,
            "report": 25.0,
        },
        [
            ("ingest", "clean_a"),
            ("ingest", "clean_b"),
            ("clean_a", "merge"),
            ("clean_b", "merge"),
            ("merge", "model_x"),
            ("merge", "model_y"),
            ("model_x", "report"),
            ("model_y", "report"),
        ],
        name="analysis-pipeline",
    )


def main() -> None:
    dag = pipeline_dag()
    path, length = dag.critical_path()
    print(f"{dag!r}: total work {dag.total_weight:g}s, "
          f"critical path {' -> '.join(path)} ({length:g}s)")
    print()

    # --- serialisation heuristics ---------------------------------------
    rows = []
    for strategy in ("lexicographic", "heavy_first", "light_first", "dfs"):
        sol = optimize_dag(dag, PLATFORM, algorithm="admv", strategy=strategy)
        rows.append(
            [strategy, " ".join(str(v) for v in sol.order),
             f"{sol.expected_time:.2f}"]
        )
    best = optimize_dag(dag, PLATFORM, algorithm="admv", strategy="all")
    rows.append(
        ["all (exact over orders)", " ".join(str(v) for v in best.order),
         f"{best.expected_time:.2f}"]
    )
    print(format_table(
        ["order strategy", "serialisation", "E[makespan] (s)"],
        rows,
        title="linearize-then-DP on the pipeline DAG",
    ))
    print()
    print(placement_diagram(
        best.schedule, title="protection along the best serialisation"
    ))
    print()

    # --- metaheuristic order search on a generated workflow -------------
    workload = generate(
        "layered", seed=42, tasks=20, layers=5, density=0.4,
        weights="lognormal", name="generated-20",
    )
    heuristics = optimize_dag(workload, PLATFORM, algorithm="admv_star")
    found = search_order(
        workload, PLATFORM, algorithm="admv_star", seed=42,
        restarts=1, polish_budget=8,
    )
    print(f"{workload!r}: too wide to enumerate — searching orders instead")
    print(f"  best fixed heuristic:   {heuristics.expected_time:10.2f}s")
    print(f"  metaheuristic search:   {found.expected_time:10.2f}s")
    print("  " + found.summary().replace("\n", "\n  "))
    print()

    # --- join graph ------------------------------------------------------
    ensemble = JoinInstance(
        source_weights=(120.0, 40.0, 300.0, 75.0, 200.0),
        sink_weight=50.0,
        rate=2e-3,
        C=8.0,
        R=5.0,
    )
    v_none = evaluate_join(
        ensemble,
        threshold_join(
            ensemble.__class__(
                ensemble.source_weights, ensemble.sink_weight, 0.0,
                ensemble.C, ensemble.R,
            )
        )[1],
    )
    v_thr, s_thr = threshold_join(ensemble)
    v_exh, s_exh = exhaustive_join(ensemble)
    v_ls, s_ls = local_search_join(ensemble)
    print(format_table(
        ["policy", "#checkpoints", "E[makespan] (s)"],
        [
            ["no checkpoints", 0, f"{v_none:.2f}"],
            ["Daly threshold", s_thr.n_checkpoints, f"{v_thr:.2f}"],
            ["exhaustive (fixed order)", s_exh.n_checkpoints, f"{v_exh:.2f}"],
            ["local search (order + flips)", s_ls.n_checkpoints, f"{v_ls:.2f}"],
        ],
        title="join graph: 5 solver runs -> 1 reduction (fail-stop only)",
    ))
    print()
    print("The local search may beat the fixed-order exhaustive optimum by")
    print("also reordering the sources (running heavy, checkpointed runs")
    print("first shrinks the forever-vulnerable unprotected work).")


if __name__ == "__main__":
    main()
