"""Repo-root pytest bootstrap: single source of the ``src/`` layout path.

The package is laid out under ``src/`` and the container runs it without
an editable install, so ``import repro`` needs ``src`` on ``sys.path``.
This conftest is loaded by pytest for *every* collection rooted here —
``pytest``, ``pytest tests/``, ``pytest benchmarks/`` — so a clean
checkout works with no ``PYTHONPATH`` environment setup, and no other
conftest or helper module has to repeat the path juggling.  (Shell
invocations of the CLI still use ``PYTHONPATH=src`` or an editable
install; see README.)
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
