import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__ (also what
# `repro --version` prints).  Parsed textually so building needs no deps.
_init = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(
    r'^__version__\s*=\s*"([^"]+)"', _init.read_text(), re.MULTILINE
).group(1)

setup(
    name="repro-two-level-checkpointing",
    version=VERSION,
    description=(
        "Two-level checkpointing and verifications for linear task graphs "
        "(Benoit et al., PDSEC 2016): optimizers, analytic evaluator, and "
        "a vectorized fault-injection Monte-Carlo engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the strictly-typed core (repro.api, obs primitives,
    # service cache, devtools) ships inline types to downstream checkers.
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    # numpy >= 2: the batched kernel targets the array-API standard names
    # (np.bool / np.astype / np.concat) that NumPy only exposes from 2.0.
    install_requires=["numpy>=2.0", "scipy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "repro-lint = repro.devtools.cli:main",
        ]
    },
)
